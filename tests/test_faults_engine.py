"""End-to-end fault injection through the simulation engine.

Covers the subsystem's acceptance bar: disabled faults leave results
bit-identical, seeded chaos runs are reproducible, crashed jobs restart
from a checkpoint no older than ``checkpoint_interval``, and scripted
plans kill exactly who they say they kill.
"""

import os

from repro.cluster import Cluster, cpu_mem
from repro.faults import (
    CheckpointLoss,
    FaultConfig,
    FaultPlan,
    NodeCrash,
    TaskCrash,
)
from repro.obs import (
    EVENT_JOB_RESTARTED,
    EVENT_NODE_FAILED,
    EVENT_NODE_RECOVERED,
    EVENT_TASK_CRASHED,
    MetricsRegistry,
    RecordingTracer,
)
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import uniform_arrivals

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

CHAOS = FaultConfig(
    node_mtbf=15_000.0,
    node_downtime=(900.0, 2_400.0),
    task_crash_rate=0.002,
)


def workload(num_jobs=4):
    return uniform_arrivals(
        num_jobs=num_jobs,
        window=1200,
        seed=CHAOS_SEED + 1,
        models=["cnn-rand", "kaggle-ndsb", "dssm"],
    )


def cluster():
    return Cluster.homogeneous(6, cpu_mem(16, 64))


def run(config, tracer=None, metrics=None, fault_plan=None, num_jobs=4):
    return simulate(
        cluster(),
        make_scheduler("optimus"),
        workload(num_jobs),
        config,
        tracer=tracer,
        metrics=metrics,
        fault_plan=fault_plan,
    )


def fingerprint(result):
    """Everything deterministic about a run's outcome."""
    return sorted(
        (
            job_id,
            r.completion_time,
            r.total_steps,
            r.num_scalings,
            r.num_restarts,
            r.steps_lost,
        )
        for job_id, r in result.jobs.items()
    )


def trace_fingerprint(tracer):
    """Events minus wall-clock data (profiler timings, span durations)."""
    return [
        {k: v for k, v in event.items() if k not in ("phases", "duration")}
        for event in tracer.events
    ]


class TestDisabledFaultsAreInvisible:
    def test_default_config_matches_faultless_run(self):
        base = SimConfig(seed=CHAOS_SEED, estimator_mode="oracle")
        with_faults_field = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=FaultConfig(),
            checkpoint_interval=None,
        )
        assert fingerprint(run(base)) == fingerprint(run(with_faults_field))

    def test_no_restart_fields_when_disabled(self):
        result = run(SimConfig(seed=CHAOS_SEED, estimator_mode="oracle"))
        for record in result.jobs.values():
            assert record.num_restarts == 0
            assert record.steps_lost == 0.0


class TestChaosDeterminism:
    def test_two_chaos_runs_identical(self):
        config = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=CHAOS,
            checkpoint_interval=1_800.0,
        )
        tracer_a, tracer_b = RecordingTracer(), RecordingTracer()
        result_a = run(config, tracer=tracer_a)
        result_b = run(config, tracer=tracer_b)
        assert fingerprint(result_a) == fingerprint(result_b)
        assert trace_fingerprint(tracer_a) == trace_fingerprint(tracer_b)

    def test_chaos_run_emits_fault_events_and_finishes(self):
        config = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=CHAOS,
            checkpoint_interval=1_800.0,
        )
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        result = run(config, tracer=tracer, metrics=metrics)
        assert result.all_finished
        assert tracer.of_type(EVENT_NODE_FAILED)
        assert tracer.of_type(EVENT_JOB_RESTARTED)
        counters = metrics.snapshot()["counters"]
        assert counters["faults.node_failures"] == len(
            tracer.of_type(EVENT_NODE_FAILED)
        )
        assert counters["faults.job_restarts"] == len(
            tracer.of_type(EVENT_JOB_RESTARTED)
        )
        # Failed nodes come back: downtime is bounded well below the run.
        assert tracer.of_type(EVENT_NODE_RECOVERED)

    def test_restart_totals_match_job_records(self):
        config = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=CHAOS,
            checkpoint_interval=1_800.0,
        )
        tracer = RecordingTracer()
        result = run(config, tracer=tracer)
        assert sum(r.num_restarts for r in result.jobs.values()) == len(
            tracer.of_type(EVENT_JOB_RESTARTED)
        )


class TestCheckpointBound:
    def test_progress_lost_bounded_by_checkpoint_interval(self):
        interval = 1_800.0  # a multiple of the 600 s sim interval
        config = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=CHAOS,
            checkpoint_interval=interval,
        )
        tracer = RecordingTracer()
        run(config, tracer=tracer)
        restarts = tracer.of_type(EVENT_JOB_RESTARTED)
        assert restarts
        for event in restarts:
            if not event["checkpoint_lost"]:
                assert event["since_checkpoint"] <= interval + 1e-9

    def test_none_interval_checkpoints_every_boundary(self):
        config = SimConfig(
            seed=CHAOS_SEED,
            estimator_mode="oracle",
            faults=CHAOS,
            checkpoint_interval=None,
        )
        tracer = RecordingTracer()
        result = run(config, tracer=tracer)
        for event in tracer.of_type(EVENT_JOB_RESTARTED):
            if not event["checkpoint_lost"]:
                assert event["since_checkpoint"] <= config.interval + 1e-9
        assert result.all_finished


class TestScriptedPlans:
    def test_scripted_node_crash_restarts_resident_jobs(self):
        # Crash every server at t=3000: whatever was running must restart.
        crash_time = 3_000.0
        plan = FaultPlan(
            node_crashes=tuple(
                NodeCrash(crash_time, f"node-{i}", 1_200.0) for i in range(6)
            )
        )
        tracer = RecordingTracer()
        result = run(
            SimConfig(seed=CHAOS_SEED, estimator_mode="oracle"),
            tracer=tracer,
            fault_plan=plan,
        )
        assert result.all_finished
        failed = tracer.of_type(EVENT_NODE_FAILED)
        assert {e["server"] for e in failed} == {f"node-{i}" for i in range(6)}
        restarts = tracer.of_type(EVENT_JOB_RESTARTED)
        assert restarts
        assert all(e["cause"] == "node_failure" for e in restarts)
        recovered = tracer.of_type(EVENT_NODE_RECOVERED)
        assert {e["server"] for e in recovered} == {
            f"node-{i}" for i in range(6)
        }

    def test_scripted_task_crash_restarts_exactly_that_job(self):
        # Find a job running at t=3000 in a clean run, then script one of
        # its tasks to die there.
        probe = RecordingTracer()
        clean = SimConfig(seed=CHAOS_SEED, estimator_mode="oracle")
        run(clean, tracer=probe)
        victims = [
            r
            for r in run(clean).jobs.values()
            if r.arrival_time < 2_400.0 and r.completion_time > 3_600.0
        ]
        assert victims, "workload needs a job spanning t=3000"
        victim = victims[0].job_id

        plan = FaultPlan(task_crashes=(TaskCrash(3_000.0, victim),))
        tracer = RecordingTracer()
        result = run(clean, tracer=tracer, fault_plan=plan)
        assert result.all_finished
        crashed = tracer.of_type(EVENT_TASK_CRASHED)
        assert [e["job_id"] for e in crashed] == [victim]
        restarts = tracer.of_type(EVENT_JOB_RESTARTED)
        assert [e["job_id"] for e in restarts] == [victim]
        assert restarts[0]["cause"] == "task_crash"
        assert result.jobs[victim].num_restarts == 1
        for job_id, record in result.jobs.items():
            if job_id != victim:
                assert record.num_restarts == 0

    def test_scripted_checkpoint_loss_falls_back_to_previous(self):
        probe = SimConfig(seed=CHAOS_SEED, estimator_mode="oracle")
        victims = [
            r
            for r in run(probe).jobs.values()
            if r.arrival_time < 2_400.0 and r.completion_time > 4_800.0
        ]
        assert victims
        victim = victims[0].job_id
        plan = FaultPlan(
            task_crashes=(TaskCrash(4_200.0, victim),),
            checkpoint_losses=(CheckpointLoss(4_200.0, victim),),
        )
        tracer = RecordingTracer()
        config = SimConfig(
            seed=CHAOS_SEED, estimator_mode="oracle", checkpoint_interval=600.0
        )
        result = run(config, tracer=tracer, fault_plan=plan)
        assert result.all_finished
        restarts = [
            e
            for e in tracer.of_type(EVENT_JOB_RESTARTED)
            if e["job_id"] == victim
        ]
        assert restarts and restarts[0]["checkpoint_lost"] is True
        # Fallback to the previous checkpoint: up to two intervals of
        # progress gone, not unbounded.
        assert restarts[0]["since_checkpoint"] <= 2 * 600.0 + 1e-9
