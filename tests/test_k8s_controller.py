"""Tests for the checkpoint-based elastic-scaling controller (§5.4)."""

import pytest

from repro.cluster.resources import cpu_mem
from repro.k8s import APIServer, JobController, JobTarget

DEMAND = cpu_mem(5, 10)


@pytest.fixture
def api():
    server = APIServer()
    for i in range(4):
        server.register_node(f"n{i}", cpu_mem(16, 64))
    return server


@pytest.fixture
def controller(api):
    return JobController(api)


def target(job_id, layout):
    return JobTarget(
        job_id=job_id,
        worker_demand=DEMAND,
        ps_demand=DEMAND,
        layout=layout,
    )


class TestCheckpoints:
    def test_roundtrip(self, controller):
        controller.save_checkpoint("j1", 1234.5)
        assert controller.load_checkpoint("j1") == 1234.5

    def test_missing(self, controller):
        assert controller.load_checkpoint("ghost") is None

    def test_delete(self, controller):
        controller.save_checkpoint("j1", 1.0)
        assert controller.delete_checkpoint("j1")
        assert controller.load_checkpoint("j1") is None


class TestReconcile:
    def test_initial_launch(self, api, controller):
        report = controller.reconcile([target("j1", {"n0": (2, 1)})])
        assert report.pods_created == 3
        assert report.pods_deleted == 0
        assert report.jobs_scaled == ("j1",)
        assert len(api.list_pods(job_id="j1")) == 3
        assert api.node("n0").allocatable == cpu_mem(1, 34)

    def test_unchanged_layout_untouched(self, api, controller):
        layout = {"n0": (2, 1)}
        controller.reconcile([target("j1", layout)])
        pods_before = {p.name for p in api.list_pods()}
        report = controller.reconcile([target("j1", layout)])
        assert report.pods_created == 0
        assert report.pods_deleted == 0
        assert report.jobs_scaled == ()
        assert {p.name for p in api.list_pods()} == pods_before

    def test_scaling_checkpoints_and_relaunches(self, api, controller):
        controller.reconcile([target("j1", {"n0": (2, 1)})])
        report = controller.reconcile(
            [target("j1", {"n0": (2, 1), "n1": (2, 1)})],
            job_progress={"j1": 500.0},
        )
        assert report.checkpoints_saved == 1
        assert report.checkpoints_restored == 1
        assert report.pods_deleted == 3
        assert report.pods_created == 6
        assert controller.load_checkpoint("j1") == 500.0
        assert len(api.list_pods(job_id="j1")) == 6

    def test_absent_job_torn_down(self, api, controller):
        controller.reconcile([target("j1", {"n0": (1, 1)})])
        report = controller.reconcile([], job_progress={"j1": 42.0})
        assert report.pods_deleted == 2
        assert controller.load_checkpoint("j1") == 42.0
        assert api.list_pods() == []

    def test_multiple_jobs_independent(self, api, controller):
        controller.reconcile(
            [target("j1", {"n0": (1, 1)}), target("j2", {"n1": (1, 1)})]
        )
        # Only j2 changes; j1's pods must survive untouched.
        j1_pods = {p.name for p in api.list_pods(job_id="j1")}
        report = controller.reconcile(
            [target("j1", {"n0": (1, 1)}), target("j2", {"n1": (2, 1)})]
        )
        assert report.jobs_scaled == ("j2",)
        assert {p.name for p in api.list_pods(job_id="j1")} == j1_pods

    def test_resources_conserved_across_cycles(self, api, controller):
        for layout in ({"n0": (2, 1)}, {"n1": (1, 1)}, {"n2": (2, 1), "n3": (1, 1)}):
            controller.reconcile([target("j1", layout)])
        controller.reconcile([])
        assert api.cluster_allocated().is_zero()

    def test_pause_resume_restores_checkpoint(self, api, controller):
        controller.reconcile([target("j1", {"n0": (1, 1)})])
        controller.reconcile([], job_progress={"j1": 77.0})  # paused
        report = controller.reconcile([target("j1", {"n1": (1, 1)})])
        assert report.checkpoints_restored == 1
