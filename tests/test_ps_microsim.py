"""Tests for the first-principles PS-step micro-simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.ps.microsim import (
    MicroStepConfig,
    closed_form_step_time,
    simulate_step,
)


def balanced(num_workers=8, num_ps=4, model=100e6, bandwidth=125e6,
             compute=2.0, update=0.05, stragglers=None):
    return MicroStepConfig(
        num_workers=num_workers,
        shard_bytes=tuple(model / num_ps for _ in range(num_ps)),
        bandwidth=bandwidth,
        compute_time=compute,
        update_time_full=update,
        straggler_factors=stragglers,
    )


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            MicroStepConfig(0, (1.0,), 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MicroStepConfig(1, (), 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MicroStepConfig(1, (1.0,), 0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MicroStepConfig(2, (1.0,), 1.0, 1.0, 1.0, straggler_factors=(1.0,))
        with pytest.raises(ConfigurationError):
            MicroStepConfig(1, (1.0,), 1.0, 1.0, 1.0, straggler_factors=(0.5,))


class TestPhaseStructure:
    def test_phases_ordered(self):
        result = simulate_step(balanced())
        assert max(result.compute_done) <= min(result.push_done) + 1e-9
        for j in range(4):
            assert result.update_done[j] >= result.push_done[j]
        assert result.step_time == max(result.pull_done)

    def test_zero_compute(self):
        result = simulate_step(balanced(compute=0.0))
        assert all(c == 0.0 for c in result.compute_done)
        assert result.step_time > 0

    def test_single_worker_single_ps(self):
        config = MicroStepConfig(1, (100e6,), 125e6, 1.0, 0.05)
        result = simulate_step(config)
        # compute + push + update + pull, all exact.
        expected = 1.0 + 100e6 / 125e6 + 0.05 + 100e6 / 125e6
        assert result.step_time == pytest.approx(expected, rel=1e-6)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("w,p", [(8, 4), (12, 6), (16, 4), (10, 10)])
    def test_matches_eqn2_when_ps_is_bottleneck(self, w, p):
        """With w >= p (the paper's 'bottleneck at the PS side' regime),
        the fluid simulation reproduces Eqn 2 almost exactly."""
        config = balanced(num_workers=w, num_ps=p)
        micro = simulate_step(config).step_time
        closed = closed_form_step_time(config)
        assert micro == pytest.approx(closed, rel=0.05)

    def test_worker_side_bottleneck_exceeds_eqn2(self):
        """With p >> w the worker NIC binds; Eqn 2 (which assumes the PS
        side binds) underestimates -- the simulation is the truth."""
        config = balanced(num_workers=2, num_ps=12)
        micro = simulate_step(config).step_time
        closed = closed_form_step_time(config)
        assert micro > closed

    def test_imbalance_slows_step(self):
        even = balanced(num_workers=8, num_ps=4)
        uneven = MicroStepConfig(
            num_workers=8,
            shard_bytes=(55e6, 15e6, 15e6, 15e6),
            bandwidth=125e6,
            compute_time=2.0,
            update_time_full=0.05,
        )
        assert simulate_step(uneven).step_time > simulate_step(even).step_time

    def test_imbalance_matches_rho_max_form(self):
        """The §5.3 closed form with rho_max tracks the simulated slowdown."""
        uneven = MicroStepConfig(
            num_workers=8,
            shard_bytes=(50e6, 25e6, 12.5e6, 12.5e6),
            bandwidth=125e6,
            compute_time=2.0,
            update_time_full=0.05,
        )
        micro = simulate_step(uneven).step_time
        closed = closed_form_step_time(uneven)
        assert micro == pytest.approx(closed, rel=0.10)

    def test_straggler_adds_own_compute_delay(self):
        base = simulate_step(balanced()).step_time
        slowed = simulate_step(
            balanced(stragglers=(3.0,) + (1.0,) * 7)
        ).step_time
        # The sync step waits for the straggler: at least its extra compute
        # is added (transfers may partially overlap).
        assert slowed > base
        assert slowed <= base + 2.0 * 2.0 + 1e-6

    def test_more_ps_reduces_step_time(self):
        few = simulate_step(balanced(num_ps=2)).step_time
        many = simulate_step(balanced(num_ps=8)).step_time
        assert many < few


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        w=st.integers(1, 10),
        p=st.integers(1, 8),
        model=st.floats(1e6, 2e8),
        compute=st.floats(0.0, 5.0),
    )
    def test_sanity_bounds(self, w, p, model, compute):
        config = MicroStepConfig(
            num_workers=w,
            shard_bytes=tuple(model / p for _ in range(p)),
            bandwidth=125e6,
            compute_time=compute,
            update_time_full=0.05,
        )
        result = simulate_step(config)
        # Lower bound: compute plus one uncontended round trip.
        assert result.step_time >= compute + 2 * (model / p) / 125e6 - 1e-6
        # Upper bound: everything fully serialised.
        assert result.step_time <= compute + 2 * model * w / 125e6 + 0.05 * w + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(w=st.integers(2, 10))
    def test_monotone_in_workers(self, w):
        smaller = simulate_step(balanced(num_workers=w)).step_time
        larger = simulate_step(balanced(num_workers=w + 2)).step_time
        assert larger >= smaller - 1e-9
