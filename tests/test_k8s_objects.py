"""Tests for the orchestrator's API objects."""

import pytest

from repro.cluster.resources import ResourceVector, cpu_mem
from repro.common.errors import ConfigurationError
from repro.k8s.objects import (
    PHASE_PENDING,
    PHASE_RUNNING,
    NodeInfo,
    PodSpec,
    pod_name,
)


class TestPodSpec:
    def make(self, **overrides):
        fields = dict(
            name="j/worker-0",
            job_id="j",
            role="worker",
            index=0,
            demand=cpu_mem(5, 10),
        )
        fields.update(overrides)
        return PodSpec(**fields)

    def test_defaults(self):
        pod = self.make()
        assert pod.phase == PHASE_PENDING
        assert not pod.bound
        assert pod.restarts == 0

    def test_bound_property(self):
        pod = self.make(node="n0", phase=PHASE_RUNNING)
        assert pod.bound

    def test_invalid_role(self):
        with pytest.raises(ConfigurationError):
            self.make(role="driver")

    def test_invalid_phase(self):
        with pytest.raises(ConfigurationError):
            self.make(phase="Zombie")

    def test_negative_index(self):
        with pytest.raises(ConfigurationError):
            self.make(index=-1)

    def test_json_roundtrip_preserves_everything(self):
        pod = self.make(node="n3", phase=PHASE_RUNNING, restarts=2)
        restored = PodSpec.from_json(pod.to_json())
        assert restored == pod

    def test_json_roundtrip_gpu_demand(self):
        pod = self.make(demand=ResourceVector({"cpu": 2, "gpu": 1}))
        assert PodSpec.from_json(pod.to_json()).demand == pod.demand


class TestNodeInfo:
    def test_allocatable(self):
        node = NodeInfo("n0", cpu_mem(16, 64), allocated=cpu_mem(6, 20))
        assert node.allocatable == cpu_mem(10, 44)

    def test_fresh_node_fully_allocatable(self):
        node = NodeInfo("n0", cpu_mem(16, 64))
        assert node.allocatable == node.capacity

    def test_json_roundtrip(self):
        node = NodeInfo("n0", cpu_mem(16, 64), allocated=cpu_mem(5, 10))
        restored = NodeInfo.from_json(node.to_json())
        assert restored.name == node.name
        assert restored.capacity == node.capacity
        assert restored.allocated == node.allocated


class TestPodName:
    def test_format(self):
        assert pod_name("job-3", "worker", 2) == "job-3/worker-2"
        assert pod_name("j", "ps", 0) == "j/ps-0"
