"""Tests for repro.obs.summarize: trace reports and timelines."""

import json

from repro.obs import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    JsonlTracer,
    RecordingTracer,
    read_trace_tolerant,
)
from repro.obs.summarize import (
    decision_timeline,
    event_type_counts,
    job_timelines,
    phase_breakdown,
    summarize_file,
    summarize_trace,
)


def small_trace():
    tracer = RecordingTracer()
    tracer.emit(EVENT_JOB_ARRIVED, 0.0, job_id="j1", model="vgg-16", mode="sync")
    tracer.emit(EVENT_ALLOCATION_DECIDED, 0.0, job_id="j1", workers=2, ps=1)
    tracer.emit(
        EVENT_INTERVAL_TICK,
        0.0,
        running_jobs=1,
        active_jobs=1,
        pending_jobs=0,
        phases={"fit": 0.2, "schedule": 0.6},
    )
    tracer.emit(EVENT_JOB_COMPLETED, 600.0, job_id="j1", steps=50.0)
    tracer.emit(
        EVENT_INTERVAL_TICK,
        600.0,
        running_jobs=0,
        active_jobs=0,
        pending_jobs=0,
        phases={"fit": 0.2, "schedule": 0.2},
    )
    return tracer.events


class TestPhaseBreakdown:
    def test_aggregates_ticks(self):
        breakdown = phase_breakdown(small_trace())
        assert breakdown["fit"]["count"] == 2
        assert breakdown["fit"]["total"] == 0.4
        assert breakdown["schedule"]["total"] == 0.8
        shares = sum(stats["share"] for stats in breakdown.values())
        assert abs(shares - 1.0) < 1e-9

    def test_percentiles_over_interval_samples(self):
        breakdown = phase_breakdown(small_trace())
        # schedule samples are [0.6, 0.2]: p50 interpolates the midpoint.
        assert abs(breakdown["schedule"]["p50"] - 0.4) < 1e-9
        assert breakdown["schedule"]["p99"] <= 0.6
        assert breakdown["fit"]["p50"] == breakdown["fit"]["p95"] == 0.2

    def test_empty_trace(self):
        assert phase_breakdown([]) == {}


class TestTolerantReads:
    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = {"seq": 0, "time": 0.0, "event": "job_arrived", "job_id": "j1"}
        path.write_text(
            json.dumps(good)
            + "\n{not json at all\n"
            + '"a bare string"\n'
            + json.dumps({**good, "seq": 1})[: -10]  # truncated tail
            + "\n"
        )
        events, skipped = read_trace_tolerant(str(path))
        assert len(events) == 1
        assert skipped == 3

    def test_summarize_file_reports_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = {"seq": 0, "time": 0.0, "event": "job_arrived", "job_id": "j1"}
        path.write_text(json.dumps(good) + "\ngarbage\n")
        text = summarize_file(str(path))
        assert "skipped 1" in text
        assert "j1" in text


class TestEventInventory:
    def test_unknown_events_bucketed(self):
        events = small_trace() + [
            {"seq": 99, "time": 0.0, "event": "from_the_future", "x": 1},
            {"seq": 100, "time": 0.0, "event": "from_the_future"},
        ]
        known, unknown = event_type_counts(events)
        assert known["job_arrived"] == 1
        assert unknown == {"from_the_future": 2}
        text = summarize_trace(events)
        assert "unknown event types: from_the_future=2" in text

    def test_no_unknown_section_when_clean(self):
        text = summarize_trace(small_trace())
        assert "unknown event types" not in text


class TestTimelines:
    def test_groups_events_by_job(self):
        timelines = job_timelines(small_trace())
        assert list(timelines) == ["j1"]
        assert [e["event"] for e in timelines["j1"]] == [
            "job_arrived",
            "allocation_decided",
            "job_completed",
        ]

    def test_decision_timeline_renders_lines(self):
        lines = decision_timeline(small_trace(), "j1")
        assert len(lines) == 3
        assert any("arrived" in line for line in lines)


class TestSummarize:
    def test_report_mentions_phases_and_jobs(self):
        text = summarize_trace(small_trace())
        assert "fit" in text
        assert "schedule" in text
        assert "j1" in text

    def test_long_timelines_truncate(self):
        tracer = RecordingTracer()
        tracer.emit(EVENT_JOB_ARRIVED, 0.0, job_id="busy", model="m", mode="sync")
        for i in range(30):
            tracer.emit(
                EVENT_ALLOCATION_DECIDED, i * 600.0, job_id="busy",
                workers=1 + i % 3, ps=1,
            )
        text = summarize_trace(tracer.events, max_events_per_job=6)
        assert "more" in text

    def test_summarize_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTracer(path) as tracer:
            for event in small_trace():
                fields = {
                    k: v for k, v in event.items()
                    if k not in ("seq", "time", "event")
                }
                tracer.emit(event["event"], event["time"], **fields)
        text = summarize_file(path)
        assert "j1" in text
