"""Tests for the deployment control loop (§5.5)."""

import pytest

from repro.cluster import cpu_mem
from repro.common.errors import SchedulingError
from repro.deploy import ControlLoop, cluster_from_api
from repro.k8s import APIServer, PodSpec
from repro.schedulers import JobView, OptimusScheduler
from repro.workloads import StepTimeModel, make_job


@pytest.fixture
def api():
    server = APIServer()
    for i in range(5):
        server.register_node(f"n{i}", cpu_mem(16, 64))
    return server


def view(job_id, model="seq2seq", remaining=50_000):
    spec = make_job(model, mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


class TestClusterFromApi:
    def test_capacity_mirrors_nodes(self, api):
        cluster = cluster_from_api(api)
        assert len(cluster) == 5
        assert cluster.total_capacity == cpu_mem(80, 320)

    def test_unmanaged_pods_occupy_capacity(self, api):
        api.create_pod(
            PodSpec(
                name="tenant/worker-0",
                job_id="tenant",
                role="worker",
                index=0,
                demand=cpu_mem(8, 16),
            )
        )
        api.bind_pod("tenant/worker-0", "n0")
        cluster = cluster_from_api(api)
        assert cluster.server("n0").available == cpu_mem(8, 48)

    def test_managed_pods_excluded(self, api):
        api.create_pod(
            PodSpec(
                name="mine/worker-0",
                job_id="mine",
                role="worker",
                index=0,
                demand=cpu_mem(8, 16),
            )
        )
        api.bind_pod("mine/worker-0", "n0")
        cluster = cluster_from_api(api, managed_jobs={"mine"})
        assert cluster.server("n0").available == cpu_mem(16, 64)

    def test_empty_api_rejected(self):
        with pytest.raises(SchedulingError):
            cluster_from_api(APIServer())


class TestControlLoop:
    def test_step_creates_pods(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        report = loop.step([view("a")])
        assert report.reconcile.pods_created >= 2
        alloc = report.decision.allocations["a"]
        assert len(api.list_pods(job_id="a")) == alloc.total
        assert report.paused == ()

    def test_steps_are_idempotent_when_decision_stable(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        views = [view("a")]
        first = loop.step(views)
        second = loop.step(views)
        # Same inputs, same decision: nothing to reconcile.
        assert second.decision.allocations == first.decision.allocations
        assert second.reconcile.pods_created == 0
        assert second.reconcile.pods_deleted == 0

    def test_step_respects_foreign_tenants(self, api):
        # Another tenant occupies most of three nodes.
        for i in range(3):
            name = f"tenant/worker-{i}"
            api.create_pod(
                PodSpec(
                    name=name, job_id="tenant", role="worker", index=i,
                    demand=cpu_mem(14, 20),
                )
            )
            api.bind_pod(name, f"n{i}")
        loop = ControlLoop(api, OptimusScheduler())
        report = loop.step([view("a")])
        # The tenant's pods survive and capacity is honoured.
        assert len(api.list_pods(job_id="tenant")) == 3
        for node in api.list_nodes():
            assert node.allocated.fits_within(node.capacity)

    def test_finished_job_torn_down_with_checkpoint(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 10.0})
        report = loop.step([], progress={"a": 999.0})
        assert report.reconcile.pods_deleted >= 2
        assert loop.controller.load_checkpoint("a") == 999.0
        assert api.list_pods(job_id="a") == []

    def test_rescale_cycles_through_checkpoint(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a", remaining=100_000)], progress={"a": 0.0})
        # Much less work left: Optimus shrinks the job.
        report = loop.step([view("a", remaining=10.0)], progress={"a": 5_000.0})
        if report.reconcile.jobs_scaled:
            assert report.reconcile.checkpoints_saved >= 1
            assert report.reconcile.checkpoints_restored >= 1

    def test_drain(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a"), view("b")])
        loop.drain(progress={"a": 1.0, "b": 2.0})
        assert api.list_pods() == []
        assert loop.controller.load_checkpoint("b") == 2.0

    def test_two_jobs_share_cluster(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        report = loop.step([view("a"), view("b", model="cnn-rand")])
        assert set(report.decision.allocations) == {"a", "b"}
        per_job = {}
        for pod in api.list_pods():
            per_job[pod.job_id] = per_job.get(pod.job_id, 0) + 1
        assert set(per_job) == {"a", "b"}
