"""Lease-based node health: heartbeats, cordoning, and the dead-node drill
(§5.5 -- a machine that goes silent costs at most one scheduling interval)."""

import pytest

from repro.cluster import cpu_mem
from repro.common.errors import KVStoreError, SchedulingError
from repro.deploy import ControlLoop, cluster_from_api
from repro.k8s import PHASE_FAILED, APIServer, PodSpec
from repro.obs import EVENT_NODE_CORDONED, MetricsRegistry, RecordingTracer
from repro.schedulers import JobView, OptimusScheduler
from repro.workloads import StepTimeModel, make_job

TTL = 2.0


def leased_api(n=3, ttl=TTL):
    api = APIServer()
    for i in range(n):
        api.register_node(f"n{i}", cpu_mem(16, 64), lease_ttl=ttl, now=0.0)
    return api


def view(job_id, model="seq2seq"):
    spec = make_job(model, mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=50_000,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


class TestNodeHeartbeats:
    def test_heartbeat_keeps_node_alive(self):
        api = leased_api(1)
        api.heartbeat_node("n0", now=1.5)
        assert api.sweep_expired(now=3.0) == []
        assert not api.node("n0").cordoned

    def test_silent_node_is_cordoned(self):
        api = leased_api(2)
        api.heartbeat_node("n1", now=1.5)
        assert api.sweep_expired(now=3.0) == ["n0"]
        assert api.node("n0").cordoned
        assert not api.node("n1").cordoned

    def test_heartbeat_without_lease_raises(self):
        api = APIServer()
        api.register_node("n0", cpu_mem(16, 64))
        with pytest.raises(KVStoreError):
            api.heartbeat_node("n0", now=1.0)

    def test_late_heartbeat_after_expiry_raises(self):
        api = leased_api(1)
        api.sweep_expired(now=5.0)
        with pytest.raises(KVStoreError):
            api.heartbeat_node("n0", now=5.0)

    def test_lapsed_unswept_heartbeat_regrants_a_fresh_lease(self):
        # The lease expired on the wall clock but no sweep has run yet:
        # the node is NOT cordoned, so the late ping re-grants instead of
        # punishing the node for the control plane's lazy clock.
        api = leased_api(1)
        old_lease = api.node("n0").lease_id
        node = api.heartbeat_node("n0", now=5.0)
        assert node.lease_id != old_lease
        assert not node.cordoned
        # The regrant keeps the original TTL: alive at 5+ttl/2, lapsed after.
        assert api.sweep_expired(now=5.0 + TTL / 2) == []
        assert api.sweep_expired(now=5.0 + TTL) == ["n0"]

    def test_regrant_does_not_leak_the_old_lease(self):
        api = leased_api(1)
        old_lease = api.node("n0").lease_id
        api.heartbeat_node("n0", now=5.0)
        assert not api.store.has_lease(old_lease)

    def test_loop_heartbeat_traces_the_regrant(self):
        tracer = RecordingTracer()
        api = leased_api(1)
        metrics = MetricsRegistry()
        loop = ControlLoop(api, OptimusScheduler(), tracer=tracer, metrics=metrics)
        loop.heartbeat("n0", now=1.0)  # plain renewal
        loop.heartbeat("n0", now=9.0)  # lapsed-unswept: regrant
        renewed = [e["event"] for e in tracer.events]
        assert renewed == ["node_lease_renewed", "node_lease_regrant"]
        assert metrics.counter("lease.renewals").value == 1
        assert metrics.counter("lease.regrants").value == 1

    def test_reregister_revives_cordoned_node(self):
        api = leased_api(1)
        api.sweep_expired(now=5.0)
        node = api.register_node("n0", cpu_mem(16, 64), lease_ttl=TTL, now=5.0)
        assert not node.cordoned
        api.heartbeat_node("n0", now=6.0)  # the fresh lease renews fine
        assert api.sweep_expired(now=6.5) == []

    def test_cordon_marks_bound_pods_failed(self):
        api = leased_api(2)
        api.create_pod(
            PodSpec(
                name="a-worker-0",
                job_id="a",
                role="worker",
                index=0,
                demand=cpu_mem(2, 4),
            )
        )
        api.bind_pod("a-worker-0", "n0")
        api.sweep_expired(now=5.0)
        assert api.pod("a-worker-0").phase == PHASE_FAILED

    def test_bind_to_cordoned_node_rejected(self):
        api = leased_api(1)
        api.sweep_expired(now=5.0)
        api.create_pod(
            PodSpec(
                name="a-worker-0",
                job_id="a",
                role="worker",
                index=0,
                demand=cpu_mem(2, 4),
            )
        )
        with pytest.raises(KVStoreError):
            api.bind_pod("a-worker-0", "n0")


class TestClusterSnapshot:
    def test_cordoned_nodes_excluded(self):
        api = leased_api(3)
        api.sweep_expired(now=5.0)  # all silent -> all cordoned... but
        # revive two so a snapshot exists.
        api.register_node("n0", cpu_mem(16, 64), lease_ttl=TTL, now=5.0)
        api.register_node("n1", cpu_mem(16, 64), lease_ttl=TTL, now=5.0)
        cluster = cluster_from_api(api)
        assert {s.name for s in cluster.servers} == {"n0", "n1"}

    def test_all_nodes_dead_raises(self):
        api = leased_api(2)
        api.sweep_expired(now=5.0)
        with pytest.raises(SchedulingError):
            cluster_from_api(api)


class TestDeadNodeDrill:
    """A node stops heartbeating mid-run; its jobs relaunch from checkpoint
    on live nodes within one scheduling interval."""

    def _run_drill(self):
        api = leased_api(3)
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        loop = ControlLoop(api, OptimusScheduler(), tracer=tracer, metrics=metrics)
        views = [view("a")]

        loop.step(views, progress={"a": 0.0})  # step 0: placed somewhere
        for name in ("n0", "n1", "n2"):
            loop.heartbeat(name, now=0.5)
        loop.step(views, progress={"a": 1_000.0})  # step 1: all healthy

        victim = {p.node for p in api.list_pods(job_id="a")}.pop()
        survivors = [n for n in ("n0", "n1", "n2") if n != victim]
        # Steps 2..3: the victim goes silent, the rest keep pinging. The
        # TTL (2 steps) lapses before step 3's sweep.
        for step_progress in (2_000.0, 3_000.0):
            for name in survivors:
                loop.heartbeat(name)
            loop.step(views, progress={"a": step_progress})
        return api, tracer, metrics, victim

    def test_dead_node_is_cordoned_and_traced(self):
        api, tracer, metrics, victim = self._run_drill()
        assert api.node(victim).cordoned
        cordons = tracer.of_type(EVENT_NODE_CORDONED)
        assert [e["server"] for e in cordons] == [victim]
        counters = metrics.snapshot()["counters"]
        assert counters["loop.nodes_cordoned"] == 1
        assert counters["lease.expirations"] == 1

    def test_job_relaunched_on_live_nodes(self):
        api, _, _, victim = self._run_drill()
        pods = api.list_pods(job_id="a")
        assert pods, "job must still be running"
        assert all(p.node != victim for p in pods)

    def test_progress_loss_bounded_by_one_interval(self):
        api, _, _, _ = self._run_drill()
        from repro.k8s import JobController

        saved = JobController(api).load_checkpoint("a")
        # The last progress reading handed to the loop was 3000; the
        # relaunch checkpointed at worst the prior interval's value.
        assert saved is not None and saved >= 2_000.0

    def test_capacity_accounting_survives_the_drill(self):
        api, _, _, _ = self._run_drill()
        for node in api.list_nodes():
            bound = sum(
                (p.demand for p in api.list_pods() if p.node == node.name),
                start=cpu_mem(0, 0),
            )
            assert dict(node.allocated.items()) == dict(bound.items())


class TestLeaselessDefaultUnchanged:
    """Clusters registered without lease_ttl behave bit-identically to the
    pre-lease control plane: no store mutations from sweeps, no cordons."""

    def test_sweep_mutates_nothing(self):
        api = APIServer()
        api.register_node("n0", cpu_mem(16, 64))
        api.register_node("n1", cpu_mem(16, 64))
        revision = api.store.revision
        loop = ControlLoop(api, OptimusScheduler())
        assert loop.sweep_node_leases() == ()
        assert api.store.revision == revision

    def test_steps_produce_identical_store_state(self):
        def run(lease_free_steps):
            api = APIServer()
            for i in range(3):
                api.register_node(f"n{i}", cpu_mem(16, 64))
            loop = ControlLoop(api, OptimusScheduler())
            for step in range(lease_free_steps):
                loop.step([view("a")], progress={"a": step * 500.0})
            return api.store.list_prefix("/")

        assert run(3) == run(3)

    def test_node_records_roundtrip_without_lease_fields(self):
        api = APIServer()
        node = api.register_node("n0", cpu_mem(16, 64))
        assert node.lease_id is None
        assert not node.cordoned
        assert api.store.get("/heartbeats/n0") is None
