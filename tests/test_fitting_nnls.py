"""Tests for the Lawson-Hanson NNLS solver, cross-checked against SciPy."""

import numpy as np
import pytest
import scipy.optimize
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import FittingError
from repro.fitting.nnls import nnls, nnls_fit


class TestBasics:
    def test_exact_nonnegative_solution(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        x_true = np.array([2.0, 3.0])
        x, rnorm = nnls(A, A @ x_true)
        assert np.allclose(x, x_true, atol=1e-8)
        assert rnorm == pytest.approx(0.0, abs=1e-8)

    def test_clamps_negative_least_squares(self):
        # Unconstrained LS solution is negative; NNLS must clamp to zero.
        A = np.array([[1.0], [1.0]])
        b = np.array([-1.0, -2.0])
        x, _ = nnls(A, b)
        assert x[0] == 0.0

    def test_residual_norm_correct(self):
        A = np.array([[1.0], [1.0]])
        b = np.array([1.0, 3.0])
        x, rnorm = nnls(A, b)
        assert x[0] == pytest.approx(2.0)
        assert rnorm == pytest.approx(np.sqrt(2.0))

    def test_wide_matrix(self):
        A = np.array([[1.0, 2.0, 3.0]])
        x, rnorm = nnls(A, np.array([6.0]))
        assert rnorm == pytest.approx(0.0, abs=1e-9)
        assert np.all(x >= 0)

    def test_nnls_fit_wrapper(self):
        A = np.eye(3)
        b = np.array([1.0, 2.0, 3.0])
        assert np.allclose(nnls_fit(A, b), b)


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(FittingError):
            nnls(np.eye(3), np.ones(2))

    def test_non_2d_matrix(self):
        with pytest.raises(FittingError):
            nnls(np.ones(3), np.ones(3))

    def test_empty(self):
        with pytest.raises(FittingError):
            nnls(np.zeros((0, 2)), np.zeros(0))

    def test_nan_rejected(self):
        A = np.array([[1.0, np.nan]])
        with pytest.raises(FittingError):
            nnls(A, np.array([1.0]))

    def test_inf_rejected(self):
        with pytest.raises(FittingError):
            nnls(np.array([[1.0]]), np.array([np.inf]))


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        m=st.integers(1, 12),
        n=st.integers(1, 6),
    )
    def test_matches_scipy_residual(self, data, m, n):
        # Zero out near-denormal entries: both solvers treat them as
        # numerically zero but disagree on which side of their tolerance
        # they fall.
        elements = st.floats(-10, 10, allow_nan=False, width=32).map(
            lambda v: 0.0 if abs(v) < 1e-6 else v
        )
        A = data.draw(hnp.arrays(np.float64, (m, n), elements=elements))
        b = data.draw(hnp.arrays(np.float64, (m,), elements=elements))
        try:
            x_ours, r_ours = nnls(A, b)
        except FittingError:
            pytest.skip("solver declined a degenerate instance")
        x_scipy, r_scipy = scipy.optimize.nnls(A, b)
        # Optimal residuals must agree (solutions may differ when A is
        # rank-deficient, but the objective value is unique).
        assert r_ours == pytest.approx(r_scipy, rel=1e-5, abs=1e-6)
        assert np.all(x_ours >= 0)

    def test_known_regression_instance(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(50, 5))
        x_true = np.abs(rng.normal(size=5))
        b = A @ x_true + rng.normal(scale=0.01, size=50)
        x_ours, r_ours = nnls(A, b)
        x_scipy, r_scipy = scipy.optimize.nnls(A, b)
        assert np.allclose(x_ours, x_scipy, atol=1e-6)
        assert r_ours == pytest.approx(r_scipy, abs=1e-8)


class TestOptimality:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_kkt_conditions(self, seed):
        """At the solution: gradient >= -tol on active set, ~0 on passive set."""
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(20, 4))
        b = rng.normal(size=20)
        x, _ = nnls(A, b)
        gradient = A.T @ (A @ x - b)
        tol = 1e-6 * max(1.0, float(np.abs(A).max()) ** 2) * 20
        active = x <= 1e-12
        assert np.all(gradient[active] >= -tol)
        assert np.all(np.abs(gradient[~active]) <= tol)
