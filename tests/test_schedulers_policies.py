"""Tests for the allocation and placement policies."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import SchedulingError
from repro.core.allocation import TaskAllocation
from repro.core.placement import PlacementRequest
from repro.schedulers import JobView
from repro.schedulers.policies import (
    drf_allocation,
    fifo_allocation,
    optimus_allocation,
    pack_placement,
    spread_placement,
    srtf_allocation,
    tetris_allocation,
)
from repro.workloads import StepTimeModel, make_job


def view(job_id, model="seq2seq", mode="sync", remaining=50_000, arrival=0.0,
         requested=4, observations=100):
    spec = make_job(
        model,
        mode=mode,
        job_id=job_id,
        arrival_time=arrival,
        requested_workers=requested,
        requested_ps=requested,
    )
    truth = StepTimeModel(spec.profile, mode)
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=observations,
    )


CAPACITY = cpu_mem(200, 400)  # 40 tasks of the standard shape


class TestOptimusAllocation:
    def test_fills_capacity_or_gains(self):
        allocations = optimus_allocation([view("a"), view("b")], CAPACITY)
        total = sum(a.total for a in allocations.values())
        assert total > 4  # grew beyond the starters

    def test_priority_factor_applies_to_young_jobs(self):
        young = view("young", remaining=100_000, observations=0)
        old = view("old", remaining=100_000, observations=500)
        allocations = optimus_allocation(
            [young, old], cpu_mem(60, 120), priority_factor=0.5
        )
        assert allocations["old"].total >= allocations["young"].total


class TestDRFAllocation:
    def test_equalises_across_identical_jobs(self):
        views = [view(f"j{i}") for i in range(4)]
        allocations = drf_allocation(views, CAPACITY)
        totals = sorted(a.total for a in allocations.values())
        assert totals[-1] - totals[0] <= 2  # within one bundle

    def test_work_conserving(self):
        allocations = drf_allocation([view("only")], CAPACITY, max_tasks_per_job=100)
        # One job alone keeps receiving bundles until capacity runs out.
        assert allocations["only"].total == 40

    def test_one_to_one_ratio(self):
        allocations = drf_allocation([view("a"), view("b")], CAPACITY)
        for alloc in allocations.values():
            assert alloc.workers == alloc.ps

    def test_respects_cap(self):
        allocations = drf_allocation([view("a")], CAPACITY, max_tasks_per_job=3)
        assert allocations["a"].workers == 3


class TestTetrisAllocation:
    def test_grants_static_requests(self):
        allocations = tetris_allocation([view("a", requested=6)], CAPACITY)
        assert allocations["a"] == TaskAllocation(6, 6)

    def test_jobs_that_do_not_fit_wait(self):
        views = [view(f"j{i}", requested=8) for i in range(4)]  # 16 tasks each
        allocations = tetris_allocation(views, CAPACITY)
        assert 0 < len(allocations) < 4

    def test_short_jobs_preferred(self):
        short = view("short", remaining=1_000, requested=8)
        long = view("long", remaining=10_000_000, requested=8)
        # Capacity for only one 16-task job.
        allocations = tetris_allocation(
            [long, short], cpu_mem(80, 160), duration_weight=1.0
        )
        assert "short" in allocations and "long" not in allocations

    def test_duration_weight_validated(self):
        with pytest.raises(SchedulingError):
            tetris_allocation([view("a")], CAPACITY, duration_weight=2.0)


class TestFIFOAllocation:
    def test_arrival_order(self):
        first = view("first", arrival=0.0, requested=8)
        second = view("second", arrival=10.0, requested=8)
        third = view("third", arrival=20.0, requested=8)
        # Capacity for two 16-task jobs only.
        allocations = fifo_allocation([third, first, second], cpu_mem(160, 320))
        assert set(allocations) == {"first", "second"}

    def test_exact_requests(self):
        allocations = fifo_allocation([view("a", requested=5)], CAPACITY)
        assert allocations["a"] == TaskAllocation(5, 5)


class TestPlacementPolicies:
    @pytest.fixture
    def cluster(self):
        return Cluster.homogeneous(4, cpu_mem(16, 64))

    def request(self, job_id, workers, ps):
        return PlacementRequest(
            job_id=job_id,
            workers=workers,
            ps=ps,
            worker_demand=cpu_mem(5, 10),
            ps_demand=cpu_mem(5, 10),
        )

    def test_spread_uses_many_servers(self, cluster):
        result = spread_placement(cluster, [self.request("j", 2, 2)])
        assert len(result.layouts["j"]) == 4  # one task per server

    def test_pack_uses_few_servers(self, cluster):
        result = pack_placement(cluster, [self.request("j", 2, 2)])
        assert len(result.layouts["j"]) <= 2

    def test_both_respect_capacity(self, cluster):
        for policy in (spread_placement, pack_placement):
            fresh = cluster.snapshot()
            result = policy(fresh, [self.request("j", 6, 6)])
            assert result.layouts  # 12 tasks fit on 4 x 3-slot servers
            for server in fresh:
                assert server.used.fits_within(server.capacity)

    def test_unplaceable_rolls_back(self, cluster):
        result = spread_placement(cluster, [self.request("big", 8, 8)])
        assert result.unplaced == ("big",)
        assert cluster.placed_task_count() == 0

    def test_layout_totals_match(self, cluster):
        result = pack_placement(cluster, [self.request("j", 5, 3)])
        layout = result.layouts["j"]
        assert sum(nw for nw, _ in layout.values()) == 5
        assert sum(np_ for _, np_ in layout.values()) == 3

    def test_sequential_jobs_share_cluster(self, cluster):
        requests = [self.request("a", 3, 3), self.request("b", 3, 3)]
        result = pack_placement(cluster, requests)
        assert set(result.layouts) == {"a", "b"}
        assert cluster.placed_task_count() == 12


class TestSRTFAllocation:
    def test_shortest_job_served_first_and_fully(self):
        short = view("short", remaining=1_000)
        long = view("long", remaining=10_000_000)
        allocations = srtf_allocation([long, short], cpu_mem(60, 120))
        # The short job is allocated before the long one sees the cluster;
        # the long job only gets leftovers (possibly nothing at all).
        assert "short" in allocations
        long_total = allocations["long"].total if "long" in allocations else 0
        assert allocations["short"].total >= long_total

    def test_jobs_that_do_not_fit_wait(self):
        views = [view(f"j{i}") for i in range(8)]
        allocations = srtf_allocation(views, cpu_mem(20, 40))
        # Two starter pairs fit at most.
        assert 1 <= len(allocations) <= 2

    def test_consumes_leftover_capacity_in_order(self):
        views = [view(f"j{i}", remaining=1000 * (i + 1)) for i in range(3)]
        allocations = srtf_allocation(views, CAPACITY)
        used = sum(a.total for a in allocations.values())
        assert used * 5 <= CAPACITY.get("cpu") + 1e-9

    def test_registered_in_policy_table(self):
        from repro.schedulers.policies import ALLOCATION_POLICIES

        assert "srtf" in ALLOCATION_POLICIES
