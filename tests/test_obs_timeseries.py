"""Tests for repro.obs.timeseries: ring-buffer series with downsampling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import MetricsRegistry, TimeSeries, TimeSeriesDB


class TestTimeSeries:
    def test_appends_below_capacity_are_verbatim(self):
        series = TimeSeries(capacity=8)
        for i in range(5):
            series.append(float(i), float(i) * 10.0)
        assert series.stride == 1
        assert series.points == [(float(i), float(i) * 10.0) for i in range(5)]
        assert series.latest == (4.0, 40.0)

    def test_overflow_halves_points_and_doubles_stride(self):
        series = TimeSeries(capacity=4)
        for i in range(4):
            series.append(float(i), float(i))
        # Hitting capacity triggers a downsample: adjacent pairs averaged.
        assert series.stride == 2
        assert series.points == [(0.5, 0.5), (2.5, 2.5)]
        # Post-overflow appends aggregate `stride` raw samples per point.
        series.append(4.0, 4.0)
        assert len(series) == 2  # accumulating, not yet flushed
        series.append(5.0, 5.0)
        assert series.points[-1] == (4.5, 4.5)

    def test_series_spans_full_lifetime_after_many_overflows(self):
        series = TimeSeries(capacity=8)
        n = 1000
        for i in range(n):
            series.append(float(i), 1.0)
        assert len(series) < 8
        assert series.stride > 1
        first_time, _ = series.points[0]
        last_time, _ = series.points[-1]
        # Oldest data blurred, never dropped: the first stored point still
        # averages over the very first raw samples.
        assert first_time < n * 0.2
        assert last_time > n * 0.6
        assert all(v == 1.0 for _, v in series.points)

    def test_downsampled_values_are_pair_averages(self):
        series = TimeSeries(capacity=4)
        for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)]:
            series.append(t, v)
        assert series.points == [(0.5, 15.0), (2.5, 35.0)]

    def test_query_closed_range(self):
        series = TimeSeries(capacity=16)
        for i in range(6):
            series.append(float(i), float(i))
        assert series.query(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert series.query(t0=4.0) == [(4.0, 4.0), (5.0, 5.0)]
        assert series.query(t1=0.0) == [(0.0, 0.0)]
        assert series.query(10.0, 20.0) == []

    def test_latest_on_empty(self):
        assert TimeSeries(capacity=4).latest is None

    @pytest.mark.parametrize("capacity", [0, 1, 3, 5, -2])
    def test_capacity_must_be_even_and_at_least_two(self, capacity):
        with pytest.raises(ConfigurationError):
            TimeSeries(capacity=capacity)
        with pytest.raises(ConfigurationError):
            TimeSeriesDB(capacity=capacity)


class TestTimeSeriesDB:
    def test_record_creates_series_lazily(self):
        db = TimeSeriesDB(capacity=8)
        assert len(db) == 0
        db.record("engine.active_jobs", 0.0, 3.0)
        db.record("engine.active_jobs", 600.0, 4.0)
        db.record("engine.running_jobs", 0.0, 2.0)
        assert db.names() == ["engine.active_jobs", "engine.running_jobs"]
        assert "engine.active_jobs" in db
        assert db.query("engine.active_jobs") == [(0.0, 3.0), (600.0, 4.0)]

    def test_unknown_series_raises(self):
        db = TimeSeriesDB()
        with pytest.raises(ConfigurationError):
            db.series("nope")
        with pytest.raises(ConfigurationError):
            db.query("nope")

    def test_sample_registry_covers_all_metric_kinds(self):
        registry = MetricsRegistry()
        registry.counter("jobs.completed").inc(7)
        registry.gauge("est.speed_mape").set(0.12)
        registry.histogram("alloc.seconds", bounds=(0.1, 1.0)).observe(0.5)
        db = TimeSeriesDB(capacity=8)
        written = db.sample_registry(registry, time=600.0)
        assert written == 3
        assert db.query("jobs.completed") == [(600.0, 7.0)]
        assert db.query("est.speed_mape") == [(600.0, 0.12)]
        # Histograms are summarised by their running count.
        assert db.query("alloc.seconds.count") == [(600.0, 1.0)]

    def test_sample_empty_registry_writes_nothing(self):
        db = TimeSeriesDB()
        assert db.sample_registry(MetricsRegistry(), time=0.0) == 0
        assert len(db) == 0

    def test_snapshot_is_json_ready(self):
        db = TimeSeriesDB(capacity=4)
        for i in range(5):
            db.record("x", float(i), float(i))
        snap = db.snapshot()
        assert set(snap) == {"x"}
        assert snap["x"]["stride"] == 2
        for point in snap["x"]["points"]:
            assert isinstance(point, list) and len(point) == 2
