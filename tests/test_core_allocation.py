"""Tests for the marginal-gain resource allocator (§4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector, cpu_mem
from repro.common.errors import SchedulingError
from repro.core.allocation import (
    AllocationRequest,
    TaskAllocation,
    allocate,
    estimated_time,
)
from repro.workloads import MODEL_ZOO, StepTimeModel

DEMAND = cpu_mem(5, 10)


def request(job_id, remaining, speed, priority=1.0, max_tasks=100):
    return AllocationRequest(
        job_id=job_id,
        remaining_work=remaining,
        speed=speed,
        worker_demand=DEMAND,
        ps_demand=DEMAND,
        priority=priority,
        max_workers=max_tasks,
        max_ps=max_tasks,
    )


def truth_speed(model="resnet-50", mode="sync"):
    truth = StepTimeModel(MODEL_ZOO[model], mode)
    return lambda p, w: truth.speed(p, w)


class TestStarterAllocations:
    def test_every_job_gets_one_plus_one(self):
        requests = [request(f"j{i}", 1000, truth_speed()) for i in range(3)]
        result = allocate(requests, cpu_mem(40, 80))
        for job_id in ("j0", "j1", "j2"):
            alloc = result.allocations[job_id]
            assert alloc.workers >= 1 and alloc.ps >= 1
        assert result.starved == ()

    def test_starvation_when_capacity_tiny(self):
        requests = [request(f"j{i}", 1000, truth_speed()) for i in range(3)]
        # Room for only two starter pairs.
        result = allocate(requests, cpu_mem(20, 40))
        assert len(result.starved) == 1
        assert result.starved == ("j2",)  # submission order preserved

    def test_starved_jobs_get_nothing(self):
        requests = [request("a", 1000, truth_speed()), request("b", 1000, truth_speed())]
        result = allocate(requests, cpu_mem(10, 20))
        assert "b" in result.starved
        assert "b" not in result.allocations


class TestCapacityRespect:
    def test_never_exceeds_capacity(self):
        capacity = cpu_mem(100, 200)
        requests = [request(f"j{i}", 10_000 * (i + 1), truth_speed()) for i in range(4)]
        result = allocate(requests, capacity)
        used = ResourceVector()
        for alloc in result.allocations.values():
            used = used + DEMAND * alloc.total
        assert used.fits_within(capacity)
        assert (result.leftover + used) == capacity

    def test_all_capacity_used_when_gains_positive(self):
        # A single huge job with near-linear async speedups should soak up
        # everything (capacity stop), modulo integrality.
        capacity = cpu_mem(100, 200)
        result = allocate(
            [request("big", 1e9, truth_speed("resnet-50", "async"))], capacity
        )
        assert result.allocations["big"].total == 20

    def test_task_caps_respected(self):
        result = allocate(
            [request("j", 1e9, truth_speed("resnet-50", "async"), max_tasks=3)],
            cpu_mem(1000, 2000),
        )
        alloc = result.allocations["j"]
        assert alloc.workers <= 3 and alloc.ps <= 3


class TestMarginalGainBehaviour:
    def test_bigger_jobs_get_more(self):
        capacity = cpu_mem(100, 200)
        requests = [
            request("small", 100, truth_speed()),
            request("large", 1_000_000, truth_speed()),
        ]
        result = allocate(requests, capacity)
        assert (
            result.allocations["large"].total > result.allocations["small"].total
        )

    def test_zero_work_job_gets_only_starter(self):
        capacity = cpu_mem(100, 200)
        requests = [
            request("done", 0, truth_speed()),
            request("busy", 1_000_000, truth_speed()),
        ]
        result = allocate(requests, capacity)
        assert result.allocations["done"] == TaskAllocation(1, 1)

    def test_stops_at_nonpositive_gains(self):
        # A speed function that *decreases* with any extra task: the greedy
        # loop must stop immediately after the starters.
        def declining(p, w):
            return 1.0 / (p + w)

        result = allocate([request("j", 1000, declining)], cpu_mem(1000, 2000))
        assert result.allocations["j"] == TaskAllocation(1, 1)
        assert result.stop_reason == "gains"

    def test_priority_factor_diverts_resources(self):
        capacity = cpu_mem(60, 120)  # 12 tasks
        young = request("young", 100_000, truth_speed(), priority=0.5)
        old = request("old", 100_000, truth_speed(), priority=1.0)
        result = allocate([young, old], capacity)
        assert result.allocations["old"].total >= result.allocations["young"].total

    def test_broken_speed_function_tolerated(self):
        def broken(p, w):
            raise RuntimeError("fit exploded")

        result = allocate(
            [request("bad", 1000, broken), request("ok", 1000, truth_speed())],
            cpu_mem(60, 120),
        )
        # The broken job keeps its starter; the healthy one grows.
        assert result.allocations["bad"] == TaskAllocation(1, 1)
        assert result.allocations["ok"].total > 2

    def test_chooses_worker_vs_ps_by_gain(self):
        # Speed that only improves with workers: no extra ps granted.
        def worker_hungry(p, w):
            return w * 1.0

        result = allocate([request("j", 1e6, worker_hungry)], cpu_mem(40, 80))
        alloc = result.allocations["j"]
        assert alloc.workers > alloc.ps


class TestValidation:
    def test_duplicate_ids_rejected(self):
        requests = [request("same", 10, truth_speed()), request("same", 10, truth_speed())]
        with pytest.raises(SchedulingError):
            allocate(requests, cpu_mem(100, 100))

    def test_bad_request_fields(self):
        with pytest.raises(SchedulingError):
            request("j", -1, truth_speed())
        with pytest.raises(SchedulingError):
            AllocationRequest(
                job_id="j",
                remaining_work=1,
                speed=truth_speed(),
                worker_demand=DEMAND,
                ps_demand=DEMAND,
                priority=0.0,
            )

    def test_empty_request_list(self):
        result = allocate([], cpu_mem(10, 10))
        assert result.allocations == {}


class TestEstimatedTime:
    def test_matches_q_over_f(self):
        req = request("j", 1000, truth_speed())
        alloc = TaskAllocation(4, 4)
        expected = 1000 / truth_speed()(4, 4)
        assert estimated_time(req, alloc) == pytest.approx(expected)

    def test_unallocated_is_infinite(self):
        req = request("j", 1000, truth_speed())
        assert estimated_time(req, TaskAllocation(0, 0)) == float("inf")


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_jobs=st.integers(1, 6),
        cpu=st.integers(10, 300),
        work=st.lists(st.floats(100, 1e6), min_size=6, max_size=6),
    )
    def test_invariants(self, num_jobs, cpu, work):
        capacity = cpu_mem(cpu, cpu * 2)
        speed = truth_speed("seq2seq", "sync")
        requests = [request(f"j{i}", work[i], speed) for i in range(num_jobs)]
        result = allocate(requests, capacity)
        used = ResourceVector()
        for job_id, alloc in result.allocations.items():
            assert alloc.workers >= 1 and alloc.ps >= 1
            used = used + DEMAND * alloc.total
        assert used.fits_within(capacity)
        assert set(result.starved) | set(result.allocations) == {
            f"j{i}" for i in range(num_jobs)
        }
        assert not (set(result.starved) & set(result.allocations))


class TestGreedyQuality:
    """The §4.1 greedy against brute force on small instances.

    The underlying program is NP-hard; the paper's claim is that the
    marginal-gain heuristic is "simple yet effective". On instances small
    enough to enumerate, the greedy's total completion time must be close
    to optimal.
    """

    def brute_force(self, requests, max_tasks):
        import itertools

        best = float("inf")
        options = [
            (w, p)
            for w in range(1, max_tasks + 1)
            for p in range(1, max_tasks + 1)
        ]
        for combo in itertools.product(options, repeat=len(requests)):
            if sum(w + p for w, p in combo) > max_tasks:
                continue
            total = 0.0
            for request, (w, p) in zip(requests, combo):
                total += estimated_time(request, TaskAllocation(w, p))
            best = min(best, total)
        return best

    def objective(self, requests, allocations):
        return sum(
            estimated_time(request, allocations[request.job_id])
            for request in requests
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_within_optimal_factor(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        models = ["resnet-50", "seq2seq", "cnn-rand", "inception-bn"]
        requests = []
        for i in range(2):
            model = models[int(rng.integers(len(models)))]
            mode = "sync" if rng.random() < 0.5 else "async"
            work = float(rng.uniform(1e3, 1e6))
            requests.append(
                request(f"j{i}", work, truth_speed(model, mode))
            )
        max_tasks = 8
        capacity = cpu_mem(5 * max_tasks, 10 * max_tasks)
        result = allocate(requests, capacity)
        greedy = self.objective(requests, result.allocations)
        optimal = self.brute_force(requests, max_tasks)
        assert greedy <= optimal * 1.35 + 1e-9


class TestGrantTrace:
    def test_disabled_by_default(self):
        result = allocate([request("j", 1000, truth_speed())], cpu_mem(40, 80))
        assert result.grants == ()

    def test_trace_records_every_grant(self):
        result = allocate(
            [request("j", 1e6, truth_speed())], cpu_mem(60, 120), trace=True
        )
        # Starter (1, 1) is not a grant; everything beyond it is.
        assert len(result.grants) == result.allocations["j"].total - 2
        for grant in result.grants:
            assert grant.job_id == "j"
            assert grant.kind in ("worker", "ps")
            assert grant.gain > 0

    def test_allocation_after_is_cumulative(self):
        result = allocate(
            [request("j", 1e6, truth_speed())], cpu_mem(60, 120), trace=True
        )
        totals = [g.allocation_after.total for g in result.grants]
        assert totals == sorted(totals)
        if totals:
            assert totals[-1] == result.allocations["j"].total

    def test_gains_reflect_greedy_order_across_jobs(self):
        requests = [
            request("small", 1_000, truth_speed()),
            request("large", 1_000_000, truth_speed()),
        ]
        result = allocate(requests, cpu_mem(80, 160), trace=True)
        # The very first grant goes to the job with the larger gain -- the
        # large job, whose absolute time reduction dominates.
        assert result.grants[0].job_id == "large"
