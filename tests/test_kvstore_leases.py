"""TTL leases in the etcd-like KV store (node-health substrate, §5.5)."""

import pytest

from repro.common.errors import KVStoreError
from repro.k8s.kvstore import KVStore


@pytest.fixture
def store():
    return KVStore()


class TestGrantRenew:
    def test_grant_returns_distinct_ids(self, store):
        ids = {store.grant_lease(5.0) for _ in range(4)}
        assert len(ids) == 4
        assert all(store.has_lease(i) for i in ids)

    def test_grant_rejects_non_positive_ttl(self, store):
        with pytest.raises(KVStoreError):
            store.grant_lease(0.0)
        with pytest.raises(KVStoreError):
            store.grant_lease(-1.0)

    def test_renew_extends_expiry(self, store):
        lease = store.grant_lease(2.0, now=0.0)
        assert store.renew_lease(lease, now=1.5) == 3.5
        assert store.lease_remaining(lease, now=3.0) == pytest.approx(0.5)

    def test_renew_unknown_lease_raises(self, store):
        with pytest.raises(KVStoreError):
            store.renew_lease(999, now=0.0)

    def test_renew_after_expiry_raises(self, store):
        lease = store.grant_lease(1.0, now=0.0)
        store.expire_leases(now=5.0)
        with pytest.raises(KVStoreError):
            store.renew_lease(lease, now=5.0)


class TestAttachedKeys:
    def test_put_attaches_key_to_lease(self, store):
        lease = store.grant_lease(2.0, now=0.0)
        store.put("/heartbeats/n0", "1", lease=lease)
        assert store.lease_keys(lease) == ["/heartbeats/n0"]

    def test_put_with_unknown_lease_raises_and_writes_nothing(self, store):
        with pytest.raises(KVStoreError):
            store.put("/k", "v", lease=42)
        assert store.get("/k") is None

    def test_expiry_deletes_attached_keys(self, store):
        lease = store.grant_lease(2.0, now=0.0)
        store.put("/a", "1", lease=lease)
        store.put("/b", "2", lease=lease)
        store.put("/c", "3")  # no lease: survives

        assert store.expire_leases(now=3.0) == [lease]
        assert store.get("/a") is None
        assert store.get("/b") is None
        assert store.get("/c") == "3"
        assert not store.has_lease(lease)

    def test_expiry_fires_watch_events(self, store):
        events = []
        store.watch("/hb/", lambda e: events.append(e))
        lease = store.grant_lease(1.0, now=0.0)
        store.put("/hb/n0", "1", lease=lease)
        store.expire_leases(now=2.0)
        assert [e.type for e in events] == ["put", "delete"]

    def test_deleting_a_key_detaches_it(self, store):
        lease = store.grant_lease(2.0, now=0.0)
        store.put("/a", "1", lease=lease)
        store.delete("/a")
        assert store.lease_keys(lease) == []

    def test_rewriting_without_lease_detaches(self, store):
        lease = store.grant_lease(2.0, now=0.0)
        store.put("/a", "1", lease=lease)
        store.put("/a", "2")
        store.expire_leases(now=9.0)
        assert store.get("/a") == "2"


class TestRevokeAndExpire:
    def test_revoke_deletes_keys_and_lease(self, store):
        lease = store.grant_lease(10.0, now=0.0)
        store.put("/a", "1", lease=lease)
        assert store.revoke_lease(lease) == ["/a"]
        assert store.get("/a") is None
        assert not store.has_lease(lease)

    def test_revoke_unknown_lease_is_noop(self, store):
        assert store.revoke_lease(123) == []

    def test_expire_only_takes_lapsed_leases(self, store):
        short = store.grant_lease(1.0, now=0.0)
        long = store.grant_lease(100.0, now=0.0)
        assert store.expire_leases(now=2.0) == [short]
        assert store.has_lease(long)

    def test_expire_is_idempotent(self, store):
        lease = store.grant_lease(1.0, now=0.0)
        assert store.expire_leases(now=2.0) == [lease]
        assert store.expire_leases(now=2.0) == []

    def test_lease_remaining_unknown_raises(self, store):
        with pytest.raises(KVStoreError):
            store.lease_remaining(7, now=0.0)


class TestExpiryReentrancy:
    """Watcher callbacks may mutate the lease table mid-expiry.

    Dropping an expired lease's keys fires watch events, and a callback
    can itself revoke or expire leases (an election noticing the leader
    record vanished). The sweep must snapshot the due ids and tolerate
    ids a nested call already removed -- the regression here used to
    mutate ``_leases`` during iteration.
    """

    def test_callback_revoking_a_due_lease_mid_sweep(self, store):
        a = store.grant_lease(1.0, now=0.0)
        b = store.grant_lease(1.0, now=0.0)
        store.put("/a", "1", lease=a)
        store.put("/b", "1", lease=b)

        def revoke_the_other(event):
            # Fires for both deletions; revoking twice must be a no-op.
            store.revoke_lease(b)

        store.watch("/", revoke_the_other)
        assert store.expire_leases(now=2.0) == sorted([a, b])
        assert not store.has_lease(a) and not store.has_lease(b)
        assert store.get("/a") is None and store.get("/b") is None

    def test_callback_expiring_nested_mid_sweep(self, store):
        leases = [store.grant_lease(1.0, now=0.0) for _ in range(3)]
        for i, lease in enumerate(leases):
            store.put(f"/k{i}", "1", lease=lease)
        nested = []

        def expire_again(event):
            if not nested:
                nested.append(store.expire_leases(now=2.0))

        store.watch("/", expire_again)
        outer = store.expire_leases(now=2.0)
        # Between the outer sweep and the nested one, every due lease
        # went exactly once; nothing raised, nothing survived.
        assert outer == sorted(leases)
        assert all(not store.has_lease(lease) for lease in leases)
        assert store.list_prefix("/") == {}

    def test_callback_granting_a_new_lease_mid_sweep(self, store):
        doomed = store.grant_lease(1.0, now=0.0)
        store.put("/doomed", "1", lease=doomed)
        granted = []

        def grant_replacement(event):
            granted.append(store.grant_lease(5.0, now=2.0))

        store.watch("/doomed", grant_replacement)
        assert store.expire_leases(now=2.0) == [doomed]
        assert len(granted) == 1 and store.has_lease(granted[0])
