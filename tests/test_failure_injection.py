"""Failure-injection tests: the pipeline must degrade loudly or gracefully,
never silently corrupt state."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import KVStoreError
from repro.common.rand import RandomSource
from repro.core.allocation import TaskAllocation
from repro.k8s import APIServer, JobController, JobTarget
from repro.schedulers import JobView, Scheduler, SchedulingDecision, make_scheduler
from repro.sim import SimConfig, simulate
from repro.sim.runtime import RuntimeJob
from repro.workloads import make_job, uniform_arrivals


class TestEstimatorFailures:
    def test_unfittable_losses_fall_back_to_prior(self):
        """A job whose convergence fit keeps failing still gets scheduled."""
        spec = make_job("cnn-rand", job_id="weird")
        job = RuntimeJob(spec, seed=RandomSource(1))
        # Identical losses at a single step make the Eqn-1 transform
        # degenerate; the estimate must fall back to the prior, not raise.
        for _ in range(30):
            job.convergence.add_observation(100, 5.0)
        remaining = job.estimated_remaining_steps()
        assert remaining > 0

    def test_broken_speed_fit_falls_back_to_truth(self):
        spec = make_job("cnn-rand", job_id="weird2")
        job = RuntimeJob(spec, seed=RandomSource(1))
        # No bootstrap at all: the speed function must still be callable.
        fn = job.speed_function()
        assert fn(2, 2) > 0


class MisbehavingScheduler(Scheduler):
    """Returns allocations whose layouts don't add up."""

    name = "broken"

    def schedule(self, cluster, jobs):
        decision = SchedulingDecision(
            allocations={jobs[0].job_id: TaskAllocation(3, 3)},
            layouts={jobs[0].job_id: {"node-0": (1, 1)}},
        )
        return decision  # note: no validate()


class HalfSilentScheduler(Scheduler):
    """Schedules nothing at all -- every job is paused every interval."""

    name = "pause-everything"

    def schedule(self, cluster, jobs):
        return SchedulingDecision()


class TestSchedulerFailures:
    def test_inconsistent_decision_detected_by_validate(self):
        scheduler = MisbehavingScheduler()
        cluster = Cluster.homogeneous(2, cpu_mem(16, 64))
        jobs = uniform_arrivals(num_jobs=1, window=0, seed=1, models=["cnn-rand"])
        decision = scheduler.schedule(cluster, _views(jobs))
        with pytest.raises(ValueError):
            decision.validate()

    def test_pausing_scheduler_makes_no_progress(self):
        jobs = uniform_arrivals(num_jobs=1, window=0, seed=1, models=["cnn-rand"])
        config = SimConfig(seed=1, estimator_mode="oracle", max_time=3_000)
        result = simulate(
            Cluster.homogeneous(2, cpu_mem(16, 64)),
            HalfSilentScheduler(),
            jobs,
            config,
        )
        assert not result.all_finished
        record = next(iter(result.jobs.values()))
        assert record.total_steps == 0


def _views(specs):
    from repro.workloads import StepTimeModel

    views = []
    for spec in specs:
        truth = StepTimeModel(spec.profile, spec.mode)
        views.append(
            JobView(
                spec=spec,
                remaining_steps=1000,
                speed=lambda p, w, t=truth: t.speed(p, w),
                observation_count=100,
            )
        )
    return views


class TestOrchestratorFailures:
    @pytest.fixture
    def api(self):
        server = APIServer()
        server.register_node("n0", cpu_mem(16, 64))
        return server

    def test_overcommitting_target_raises(self, api):
        controller = JobController(api)
        target = JobTarget(
            job_id="greedy",
            worker_demand=cpu_mem(5, 10),
            ps_demand=cpu_mem(5, 10),
            layout={"n0": (4, 4)},  # 40 CPU on a 16-CPU node
        )
        with pytest.raises(KVStoreError):
            controller.reconcile([target])

    def test_unknown_node_in_target_raises(self, api):
        controller = JobController(api)
        target = JobTarget(
            job_id="lost",
            worker_demand=cpu_mem(5, 10),
            ps_demand=cpu_mem(5, 10),
            layout={"ghost-node": (1, 1)},
        )
        with pytest.raises(KVStoreError):
            controller.reconcile([target])

    def test_failed_reconcile_leaves_partial_pods_visible(self, api):
        """A mid-flight failure is loud; the operator can inspect state."""
        controller = JobController(api)
        bad = JobTarget(
            job_id="partial",
            worker_demand=cpu_mem(5, 10),
            ps_demand=cpu_mem(5, 10),
            layout={"n0": (3, 3)},  # workers fit (15 CPU); the ps don't
        )
        with pytest.raises(KVStoreError):
            controller.reconcile([bad])
        # Whatever was bound is still accounted for consistently.
        node = api.node("n0")
        assert node.allocated.fits_within(node.capacity)


class TestWorkloadEdgeCases:
    def test_zero_length_interval_rejected(self):
        with pytest.raises(Exception):
            SimConfig(interval=0)

    def test_simulation_survives_extreme_thresholds(self):
        # A near-zero threshold makes the job run to the safety cap; the sim
        # must terminate via max_time rather than hang.
        job = make_job("cnn-rand", job_id="forever", threshold=1e-9)
        config = SimConfig(seed=1, estimator_mode="oracle", max_time=1_800)
        result = simulate(
            Cluster.homogeneous(2, cpu_mem(16, 64)),
            make_scheduler("optimus"),
            [job],
            config,
        )
        assert "forever" in result.jobs
