"""Tests for PAI-style CSV trace ingestion (repro.workloads.csvtrace)."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import jobs_from_csv, load_csv_trace
from repro.workloads.csvtrace import (
    DURATION_SCALE_RANGE,
    MAX_REQUESTED_TASKS,
    _nearest_model,
)
from repro.workloads.profiles import MODEL_ZOO

GOOD_CSV = """job_id,arrival,duration,gpus,mode
alpha,0,40000,4,sync
beta,600,90000,8,async
gamma,1200,12000,2,sync
"""


class TestHappyPath:
    def test_parses_all_rows(self):
        jobs = jobs_from_csv(GOOD_CSV)
        assert [j.job_id for j in jobs] == ["alpha", "beta", "gamma"]
        assert [j.arrival_time for j in jobs] == [0.0, 600.0, 1200.0]
        assert jobs[1].mode == "async"

    def test_sorted_by_arrival(self):
        csv_text = "arrival,duration,gpus\n900,40000,1\n100,40000,1\n"
        jobs = jobs_from_csv(csv_text)
        assert [j.arrival_time for j in jobs] == [100.0, 900.0]

    def test_duration_estimate_maps_to_ground_truth(self):
        # The chosen zoo model rescaled by dataset_scale must reproduce
        # the row's single-GPU duration estimate (within the clamp range).
        jobs = jobs_from_csv("arrival,duration,gpus\n0,40000,2\n")
        job = jobs[0]
        reference = job.profile.single_gpu_training_time()
        assert math.isclose(job.dataset_scale, 40000 / reference, rel_tol=1e-9)

    def test_nearest_model_log_space(self):
        for name, profile in MODEL_ZOO.items():
            assert _nearest_model(profile.single_gpu_training_time()) == name

    def test_gpus_clamped_to_max_tasks(self):
        jobs = jobs_from_csv("arrival,duration,gpus\n0,40000,64\n")
        assert jobs[0].requested_workers == MAX_REQUESTED_TASKS
        assert jobs[0].requested_ps == MAX_REQUESTED_TASKS

    def test_scale_clamped(self):
        lo, hi = DURATION_SCALE_RANGE
        tiny = jobs_from_csv("arrival,duration,gpus\n0,0.001,1\n")[0]
        huge = jobs_from_csv("arrival,duration,gpus\n0,1e12,1\n")[0]
        assert tiny.dataset_scale == lo
        assert huge.dataset_scale == hi

    def test_header_aliases(self):
        csv_text = "submit_time,runtime,num_gpu\n5,40000,2\n"
        jobs = jobs_from_csv(csv_text)
        assert jobs[0].arrival_time == 5.0

    def test_synthesised_job_ids_carry_line(self):
        jobs = jobs_from_csv("arrival,duration,gpus\n0,40000,1\n10,40000,1\n")
        assert jobs[0].job_id == "csv-2"
        assert jobs[1].job_id == "csv-3"

    def test_blank_lines_skipped(self):
        jobs = jobs_from_csv("arrival,duration,gpus\n0,40000,1\n,,\n10,40000,1\n")
        assert len(jobs) == 2

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(GOOD_CSV)
        assert len(load_csv_trace(str(path))) == 3


class TestRejection:
    def test_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            jobs_from_csv("arrival,duration,gpus\n-5,40000,1\n")

    def test_negative_arrival_with_line(self):
        with pytest.raises(ConfigurationError, match="line 2.*arrival"):
            jobs_from_csv("arrival,duration,gpus\n-5,40000,1\n")

    def test_nonpositive_duration_with_line(self):
        with pytest.raises(ConfigurationError, match="line 3.*duration"):
            jobs_from_csv("arrival,duration,gpus\n0,40000,1\n10,0,1\n")

    def test_nonpositive_gpus_with_line(self):
        with pytest.raises(ConfigurationError, match="line 2.*gpus"):
            jobs_from_csv("arrival,duration,gpus\n0,40000,0\n")

    def test_fractional_gpus_rejected(self):
        with pytest.raises(ConfigurationError, match="positive integer"):
            jobs_from_csv("arrival,duration,gpus\n0,40000,1.5\n")

    def test_non_numeric_cell(self):
        with pytest.raises(ConfigurationError, match="line 2.*'duration'"):
            jobs_from_csv("arrival,duration,gpus\n0,soon,1\n")

    def test_empty_cell(self):
        with pytest.raises(ConfigurationError, match="empty 'gpus'"):
            jobs_from_csv("arrival,duration,gpus\n0,40000,\n")

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            jobs_from_csv("arrival,duration,gpus\n0,nan,1\n")

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            jobs_from_csv("arrival,duration,gpus,mode\n0,40000,1,turbo\n")

    def test_missing_required_column(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            jobs_from_csv("arrival,gpus\n0,1\n")

    def test_empty_file(self):
        with pytest.raises(ConfigurationError, match="no header"):
            jobs_from_csv("")

    def test_header_only(self):
        with pytest.raises(ConfigurationError, match="no job rows"):
            jobs_from_csv("arrival,duration,gpus\n")

    def test_duplicate_job_id_names_both_lines(self):
        csv_text = "job_id,arrival,duration,gpus\nsame,0,40000,1\nsame,10,40000,1\n"
        with pytest.raises(ConfigurationError, match="line 3.*line 2"):
            jobs_from_csv(csv_text)
