"""Tests for job specifications."""

import pytest

from repro.cluster.resources import cpu_mem
from repro.common.errors import ConfigurationError
from repro.workloads import make_job
from repro.workloads.job import DEFAULT_PS_DEMAND, DEFAULT_WORKER_DEMAND, JobSpec
from repro.workloads.profiles import get_profile


class TestMakeJob:
    def test_defaults(self):
        job = make_job("resnet-50")
        assert job.mode == "sync"
        assert job.worker_demand == DEFAULT_WORKER_DEMAND
        assert job.ps_demand == DEFAULT_PS_DEMAND
        assert job.profile.name == "resnet-50"

    def test_auto_ids_unique(self):
        a, b = make_job("cnn-rand"), make_job("cnn-rand")
        assert a.job_id != b.job_id

    def test_explicit_id(self):
        assert make_job("cnn-rand", job_id="mine").job_id == "mine"

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            make_job("vgg-16")


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", mode="turbo")

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", threshold=0)

    def test_bad_patience(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", patience=0)

    def test_bad_dataset_scale(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", dataset_scale=-1)

    def test_negative_arrival(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", arrival_time=-5)

    def test_bad_request(self):
        with pytest.raises(ConfigurationError):
            make_job("cnn-rand", requested_workers=0)

    def test_empty_demand(self):
        with pytest.raises(ConfigurationError):
            JobSpec(
                job_id="x",
                profile=get_profile("cnn-rand"),
                mode="sync",
                worker_demand=cpu_mem(0, 0),
            )


class TestDerived:
    def test_steps_per_epoch_uses_mode(self):
        sync = make_job("resnet-50", mode="sync")
        async_ = make_job("resnet-50", mode="async")
        assert async_.steps_per_epoch() > sync.steps_per_epoch()

    def test_total_steps_respects_threshold(self):
        tight = make_job("seq2seq", threshold=0.0005)
        loose = make_job("seq2seq", threshold=0.01)
        assert tight.total_steps_to_converge() > loose.total_steps_to_converge()

    def test_task_demand_aggregates(self):
        job = make_job("cnn-rand")
        assert job.task_demand(3, 2) == cpu_mem(25, 50)

    def test_model_name(self):
        assert make_job("dssm").model_name == "dssm"
