"""Tests for the Pollux-style goodput allocator."""

import numpy as np
import pytest

from repro.cluster import Cluster, cpu_mem
from repro.core.allocation import WeightedSpeed
from repro.schedulers import JobView, make_scheduler
from repro.schedulers.base import MIN_STATISTICAL_EFFICIENCY
from repro.schedulers.goodput import goodput_allocation, goodput_speed
from repro.workloads import StepTimeModel, make_job


def view(job_id, model="seq2seq", mode="sync", remaining=50_000, arrival=0.0,
         requested=4, observations=100, loss_efficiency=1.0):
    spec = make_job(
        model,
        mode=mode,
        job_id=job_id,
        arrival_time=arrival,
        requested_workers=requested,
        requested_ps=requested,
    )
    truth = StepTimeModel(spec.profile, mode)
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=observations,
        loss_efficiency=loss_efficiency,
    )


CAPACITY = cpu_mem(200, 400)  # 40 tasks of the standard 5-CPU/10-GB shape


class TestStatisticalEfficiency:
    def test_sync_jobs_only_pay_loss_term(self):
        v = view("sync", mode="sync", loss_efficiency=0.6)
        assert v.statistical_efficiency(1) == 0.6
        assert v.statistical_efficiency(16) == 0.6

    def test_async_efficiency_decreases_with_workers(self):
        v = view("async", mode="async")
        effs = [v.statistical_efficiency(w) for w in (1, 2, 4, 8, 16)]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_floor_applies(self):
        v = view("floored", mode="async", loss_efficiency=0.0)
        assert v.statistical_efficiency(100) == MIN_STATISTICAL_EFFICIENCY

    def test_goodput_never_exceeds_speed(self):
        v = view("j", mode="async")
        for n in (1, 2, 4, 8):
            assert v.goodput(n, n) <= v.speed(n, n) + 1e-12

    def test_goodput_zero_on_invalid_config(self):
        v = view("j")
        assert v.goodput(0, 4) == 0.0
        assert v.goodput(4, 0) == 0.0


class TestWeightedSpeed:
    def test_vectorized_matches_scalar(self):
        v = view("j", mode="async")
        # An elementwise base (Eqn-3 form), standing in for a fitted model.
        elementwise = WeightedSpeed(
            lambda p, w: w / (2.0 + 3.0 * w / p + 0.02 * w),
            goodput_speed(v).weight,
        )
        ps = np.array([1, 2, 3, 4])
        ws = np.array([1, 2, 4, 8])
        vectorized = elementwise.predict_many(ps, ws)
        scalar = np.array([elementwise(p, w) for p, w in zip(ps, ws)])
        np.testing.assert_allclose(vectorized, scalar, rtol=1e-12)

    def test_non_elementwise_base_raises_typeerror(self):
        # The _BatchEvaluator contract: a base that cannot broadcast makes
        # predict_many raise, flipping the allocator to scalar calls.
        v = view("j", mode="async")
        weighted = goodput_speed(v)
        assert isinstance(weighted, WeightedSpeed)
        with pytest.raises(Exception):
            weighted.predict_many(np.array([1, 2]), np.array([1, 2]))

    def test_weight_reduces_async_speed(self):
        v = view("j", mode="async")
        weighted = goodput_speed(v)
        assert weighted(4, 8) < v.speed(4, 8)

    def test_sync_full_efficiency_is_identity(self):
        v = view("j", mode="sync", loss_efficiency=1.0)
        weighted = goodput_speed(v)
        assert weighted(2, 4) == v.speed(2, 4)


class TestGoodputAllocation:
    def test_respects_capacity(self):
        views = [view(f"j{i}") for i in range(5)]
        allocations = goodput_allocation(views, CAPACITY)
        used = sum(a.total for a in allocations.values())
        assert used * 5 <= CAPACITY.get("cpu") + 1e-9
        assert used * 10 <= CAPACITY.get("memory") + 1e-9

    def test_every_active_job_gets_a_starter(self):
        views = [view(f"j{i}") for i in range(3)]
        allocations = goodput_allocation(views, CAPACITY)
        assert set(allocations) == {"j0", "j1", "j2"}
        assert all(a.workers >= 1 and a.ps >= 1 for a in allocations.values())

    def test_converged_jobs_yield_to_fresh_ones(self):
        fresh = view("fresh", loss_efficiency=1.0)
        converged = view("converged", loss_efficiency=0.06)
        allocations = goodput_allocation([converged, fresh], cpu_mem(60, 120))
        assert allocations["fresh"].total >= allocations["converged"].total

    def test_async_scaling_curbed_relative_to_sync(self):
        sync = view("sync", mode="sync")
        async_ = view("async", mode="async")
        allocations = goodput_allocation([sync, async_], cpu_mem(100, 200))
        assert allocations["sync"].total >= allocations["async"].total


class TestGoodputScheduler:
    def test_end_to_end_decision_validates(self):
        scheduler = make_scheduler("goodput")
        cluster = Cluster.homogeneous(4, cpu_mem(16, 64))
        decision = scheduler.schedule(cluster, [view("a"), view("b")])
        decision.validate()
        assert decision.scheduled_jobs
