"""End-to-end integration tests: the headline claims of the paper must hold
on the full pipeline (online estimators, real allocation/placement, ground
truth with placement and imbalance effects)."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.k8s import APIServer, JobController, JobTarget
from repro.schedulers import JobView, make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import StepTimeModel, make_job, uniform_arrivals

pytestmark = pytest.mark.slow  # full-pipeline sims; nightly lane


def cluster():
    return Cluster.homogeneous(13, cpu_mem(16, 80))


@pytest.fixture(scope="module")
def headline_results():
    """One seeded Fig-11 style run shared by the assertions below."""
    jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42)
    results = {}
    for name in ("optimus", "drf", "tetris"):
        results[name] = simulate(
            cluster(), make_scheduler(name), jobs, SimConfig(seed=7)
        )
    return results


class TestHeadlineClaims:
    def test_everyone_finishes(self, headline_results):
        for name, result in headline_results.items():
            assert result.all_finished, name

    def test_optimus_best_jct(self, headline_results):
        opt = headline_results["optimus"].average_jct
        assert headline_results["drf"].average_jct > opt
        assert headline_results["tetris"].average_jct > opt

    def test_optimus_best_makespan(self, headline_results):
        opt = headline_results["optimus"].makespan
        assert headline_results["drf"].makespan > opt
        assert headline_results["tetris"].makespan > opt

    def test_drf_runs_more_tasks_than_optimus(self, headline_results):
        """Fig 14a: DRF is work-conserving and floods the cluster."""
        assert (
            headline_results["drf"].mean_running_tasks()
            > headline_results["optimus"].mean_running_tasks()
        )

    def test_scaling_overhead_small(self, headline_results):
        """§6.2 reports 2.54% overall resource-adjustment overhead."""
        frac = headline_results["optimus"].scaling_overhead_fraction
        assert frac < 0.10


class TestAblationDirections:
    """Fig 18/19: each Optimus component contributes."""

    @pytest.fixture(scope="class")
    def jobs(self):
        return uniform_arrivals(num_jobs=7, window=8_000, seed=11)

    def test_optimus_allocation_matters(self, jobs):
        full = simulate(cluster(), make_scheduler("optimus"), jobs, SimConfig(seed=5))
        swapped = simulate(
            cluster(), make_scheduler("drf+optimus"), jobs, SimConfig(seed=5)
        )
        assert full.average_jct < swapped.average_jct * 1.05

    def test_optimus_placement_matters(self, jobs):
        full = simulate(cluster(), make_scheduler("optimus"), jobs, SimConfig(seed=5))
        swapped = simulate(
            cluster(), make_scheduler("optimus+spread"), jobs, SimConfig(seed=5)
        )
        assert full.average_jct < swapped.average_jct * 1.05


class TestSchedulerDrivesOrchestrator:
    def test_decision_reconciles_into_pods(self):
        """An Optimus decision can drive the k8s substrate end to end."""
        work_cluster = Cluster.homogeneous(4, cpu_mem(16, 64))
        api = APIServer()
        for server in work_cluster:
            api.register_node(server.name, server.capacity)
        controller = JobController(api)

        spec = make_job("seq2seq", job_id="it-job")
        truth = StepTimeModel(spec.profile, spec.mode)
        view = JobView(
            spec=spec,
            remaining_steps=50_000,
            speed=lambda p, w: truth.speed(p, w),
            observation_count=100,
        )
        decision = make_scheduler("optimus").schedule(work_cluster, [view])
        targets = [
            JobTarget(
                job_id=job_id,
                worker_demand=spec.worker_demand,
                ps_demand=spec.ps_demand,
                layout=dict(layout),
            )
            for job_id, layout in decision.layouts.items()
        ]
        report = controller.reconcile(targets)
        alloc = decision.allocations["it-job"]
        assert report.pods_created == alloc.total
        assert len(api.list_pods(job_id="it-job")) == alloc.total
        # Pod placement mirrors the decision's layout exactly.
        for server_name, (n_workers, n_ps) in decision.layouts["it-job"].items():
            pods = api.list_pods(node=server_name)
            workers = sum(1 for p in pods if p.role == "worker")
            ps = sum(1 for p in pods if p.role == "ps")
            assert (workers, ps) == (n_workers, n_ps)
