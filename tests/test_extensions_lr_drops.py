"""Tests for learning-rate-drop handling (§7 "Convergence estimation")."""

import pytest

from repro.common.errors import ConfigurationError, FittingError
from repro.core.convergence import ConvergenceEstimator
from repro.workloads import MODEL_ZOO, LossEmitter
from repro.workloads.lr_schedule import SteppedLossCurve, with_lr_drops


@pytest.fixture
def base():
    return MODEL_ZOO["seq2seq"].loss


@pytest.fixture
def stepped(base):
    return with_lr_drops(base, [30])


class TestSteppedLossCurve:
    def test_starts_at_one(self, stepped):
        assert stepped.loss(0) == pytest.approx(1.0)

    def test_matches_base_before_drop(self, base, stepped):
        for epoch in (0, 5, 15, 29):
            assert stepped.loss(epoch) == pytest.approx(base.loss(epoch))

    def test_continuous_at_drop(self, base, stepped):
        assert stepped.loss(30) == pytest.approx(base.loss(30))

    def test_fast_descent_after_drop(self, base, stepped):
        """The post-drop decrease spikes above the tired pre-drop tail."""
        pre_drop_decrease = stepped.epoch_decrease(30)
        post_drop_decrease = stepped.epoch_decrease(31)
        assert post_drop_decrease > 3 * pre_drop_decrease
        assert stepped.loss(35) < base.loss(35)

    def test_monotone_overall(self, stepped):
        values = [stepped.loss(e) for e in range(0, 80)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_stopping_rule_rearmed_by_drop(self, base):
        """A drop after the base would have converged defers convergence."""
        base_epochs = base.epochs_to_converge(0.002)
        curve = with_lr_drops(base, [base_epochs - 10])
        assert curve.epochs_to_converge(0.002) > base_epochs - 10

    def test_multiple_drops(self, base):
        curve = with_lr_drops(base, [20, 35])
        assert curve.loss(50) < with_lr_drops(base, [20]).loss(50)

    def test_validation(self, base):
        with pytest.raises(ConfigurationError):
            SteppedLossCurve(segments=())
        with pytest.raises(ConfigurationError):
            SteppedLossCurve(segments=((5.0, base),))  # must start at 0
        with pytest.raises(ConfigurationError):
            SteppedLossCurve(segments=((0.0, base), (10.0, base), (10.0, base)))
        with pytest.raises(ConfigurationError):
            with_lr_drops(base, [10], descent_fraction=1.5)
        with pytest.raises(ConfigurationError):
            with_lr_drops(base, [-3])
        with pytest.raises(ConfigurationError):
            stepped_curve = with_lr_drops(base, [10])
            stepped_curve.loss(-1)


def feed_in_intervals(estimator, emitter, spe, upto_epoch, chunk=2, stride=40):
    fed = 0
    for end in range(chunk, upto_epoch + 1, chunk):
        for obs in emitter.observe_range(fed, int(end * spe), stride):
            estimator.add_observation(obs.step, obs.loss)
        fed = int(end * spe)
        if estimator.can_fit:
            estimator.fit(force=True)


class TestEstimatorReset:
    SPE = 300.0

    def run_estimator(self, curve, reset):
        emitter = LossEmitter(curve, self.SPE, seed=4)
        estimator = ConvergenceEstimator(
            0.002, self.SPE, reset_on_drop=reset
        )
        feed_in_intervals(estimator, emitter, self.SPE, upto_epoch=38)
        return estimator

    def test_reset_fires_on_drop(self, stepped):
        estimator = self.run_estimator(stepped, reset=True)
        assert estimator.reset_count == 1

    def test_no_reset_without_drop(self, base):
        estimator = self.run_estimator(base, reset=True)
        assert estimator.reset_count == 0

    def test_reset_improves_prediction(self, stepped):
        true_total = stepped.epochs_to_converge(0.002) * self.SPE
        plain = self.run_estimator(stepped, reset=False)
        resetting = self.run_estimator(stepped, reset=True)
        err_plain = abs(plain.predicted_total_steps() - true_total) / true_total
        err_reset = abs(resetting.predicted_total_steps() - true_total) / true_total
        assert err_reset < err_plain
        assert err_reset < 0.5

    def test_disabled_by_default(self, stepped):
        emitter = LossEmitter(stepped, self.SPE, seed=4)
        estimator = ConvergenceEstimator(0.002, self.SPE)
        feed_in_intervals(estimator, emitter, self.SPE, upto_epoch=38)
        assert estimator.reset_count == 0

    def test_predictions_stay_in_absolute_steps(self, stepped):
        estimator = self.run_estimator(stepped, reset=True)
        # The phase offset must be folded back: the prediction exceeds the
        # drop step (epoch 30).
        assert estimator.predicted_total_steps() > 30 * self.SPE

    def test_constructor_validation(self):
        with pytest.raises(FittingError):
            ConvergenceEstimator(0.002, 100, drop_ratio=1.5)
        with pytest.raises(FittingError):
            ConvergenceEstimator(0.002, 100, drop_patience=0)
