"""Tests for the plain-text reporting helpers."""

import json
import math

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import ConfigurationError
from repro.report import (
    bar_chart,
    format_table,
    result_to_dict,
    result_to_json,
    sparkline,
)
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import uniform_arrivals


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        assert len(sparkline(range(17))) == 17

    def test_extremes_hit_both_ends(self):
        line = sparkline([0, 10, 0, 10])
        assert line[0] == "▁" and line[1] == "█"

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0, math.inf])


class TestBarChart:
    def test_longest_bar_spans_width(self):
        chart = bar_chart([("a", 1), ("b", 2)], width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1), ("a-long-label", 1)], width=5)
        positions = [line.index("|") for line in chart.splitlines()]
        assert len(set(positions)) == 1

    def test_unit_rendered(self):
        assert "2h" in bar_chart([("x", 2)], unit="h")

    def test_zero_values(self):
        chart = bar_chart([("a", 0), ("b", 0)], width=10)
        assert "█" not in chart

    def test_empty(self):
        assert bar_chart([]) == ""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart([("a", -1)])
        with pytest.raises(ConfigurationError):
            bar_chart([("a", 1)], width=0)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["alpha", 1.5], ["b", 22.25]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("alpha")
        # Numeric column right-aligned.
        assert lines[2].endswith("1.500")
        assert lines[3].endswith("22.250")

    def test_header_only(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestResultSerialisation:
    @pytest.fixture(scope="class")
    def result(self):
        jobs = uniform_arrivals(
            num_jobs=2, window=600, seed=5, models=["cnn-rand"]
        )
        return simulate(
            Cluster.homogeneous(4, cpu_mem(16, 64)),
            make_scheduler("optimus"),
            jobs,
            SimConfig(seed=3, estimator_mode="oracle"),
        )

    def test_dict_shape(self, result):
        data = result_to_dict(result)
        assert data["scheduler"] == "optimus"
        assert len(data["jobs"]) == 2
        assert data["timeline"]
        assert "average_jct" in data["summary"]

    def test_json_roundtrip(self, result):
        data = json.loads(result_to_json(result))
        assert data["scheduler"] == "optimus"
        for job in data["jobs"]:
            assert job["jct"] is None or job["jct"] > 0

    def test_infinities_become_null(self, result):
        # Force an unfinished-job summary through the serialiser.
        from repro.sim.metrics import JobRecord, SimulationResult

        unfinished = SimulationResult(
            scheduler_name="x",
            jobs={
                "j": JobRecord(
                    job_id="j", model="cnn-rand", mode="sync",
                    arrival_time=0.0, completion_time=None,
                    total_steps=0, scaling_time=0, num_scalings=0,
                    chunks_moved=0,
                )
            },
            timeline=[],
            interval=600,
            seed=0,
        )
        data = json.loads(result_to_json(unfinished))
        assert data["summary"]["average_jct"] is None
        assert data["summary"]["makespan"] is None
