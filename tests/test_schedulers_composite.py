"""Tests for the composite scheduler and the named presets."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import SchedulingError
from repro.schedulers import (
    CompositeScheduler,
    DRFScheduler,
    FIFOScheduler,
    JobView,
    OptimusScheduler,
    TetrisScheduler,
    make_scheduler,
)
from repro.workloads import StepTimeModel, make_job


def view(job_id, model="seq2seq", mode="sync", remaining=50_000):
    spec = make_job(model, mode=mode, job_id=job_id)
    truth = StepTimeModel(spec.profile, mode)
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


@pytest.fixture
def cluster():
    return Cluster.homogeneous(6, cpu_mem(16, 64))


class TestConstruction:
    def test_presets(self):
        assert OptimusScheduler().name == "optimus"
        assert DRFScheduler().name == "drf"
        assert TetrisScheduler().name == "tetris"
        assert FIFOScheduler().name == "fifo"

    def test_make_scheduler_presets(self):
        assert isinstance(make_scheduler("optimus"), OptimusScheduler)
        assert isinstance(make_scheduler("drf"), DRFScheduler)

    def test_make_scheduler_hybrids(self):
        hybrid = make_scheduler("drf+optimus")
        assert isinstance(hybrid, CompositeScheduler)
        assert hybrid.name == "drf+optimus"

    def test_unknown_scheduler(self):
        with pytest.raises(SchedulingError):
            make_scheduler("borg")

    def test_unknown_policies(self):
        with pytest.raises(SchedulingError):
            CompositeScheduler("magic", "optimus")
        with pytest.raises(SchedulingError):
            CompositeScheduler("drf", "magic")


class TestScheduleContract:
    def test_empty_jobs(self, cluster):
        decision = OptimusScheduler().schedule(cluster, [])
        assert decision.allocations == {}
        assert decision.layouts == {}

    @pytest.mark.parametrize("name", ["optimus", "drf", "tetris", "fifo"])
    def test_decision_consistency(self, cluster, name):
        views = [view(f"j{i}") for i in range(3)]
        decision = make_scheduler(name).schedule(cluster, views)
        decision.validate()  # layout totals must match allocations
        assert set(decision.layouts) <= set(decision.allocations)

    @pytest.mark.parametrize("name", ["optimus", "drf", "tetris", "fifo"])
    def test_capacity_respected(self, cluster, name):
        views = [view(f"j{i}") for i in range(5)]
        decision = make_scheduler(name).schedule(cluster, views)
        for server in cluster:
            assert server.used.fits_within(server.capacity)

    def test_scheduled_jobs_property(self, cluster):
        views = [view("a"), view("b")]
        decision = OptimusScheduler().schedule(cluster, views)
        assert set(decision.scheduled_jobs) == set(decision.layouts)
        assert decision.total_tasks == sum(
            decision.allocations[j].total for j in decision.scheduled_jobs
        )


class TestShrinkRetry:
    def test_fragmented_allocation_shrinks_instead_of_pausing(self):
        """Aggregate-feasible but fragmentation-rejected jobs are shrunk."""
        # 3 servers x 3 slots = 9 placeable tasks, but aggregate capacity
        # suggests 9.6: optimus allocation may hand out 9+ tasks.
        cluster = Cluster.homogeneous(3, cpu_mem(16, 64))
        views = [view(f"j{i}", remaining=10**6) for i in range(2)]
        decision = OptimusScheduler().schedule(cluster, views)
        # Both jobs must still run (no starvation).
        assert set(decision.scheduled_jobs) == {"j0", "j1"}

    def test_truly_unplaceable_job_paused(self):
        cluster = Cluster.homogeneous(1, cpu_mem(8, 16))  # one task max... (5,10)
        views = [view("a"), view("b")]
        decision = OptimusScheduler().schedule(cluster, views)
        # Only one job can hold even a 1+1 starter? The 8-CPU server fits a
        # single 5-CPU task, so not even (1, 1) fits: nothing runs.
        assert decision.scheduled_jobs == ()


class TestValidateDecision:
    def test_mismatched_layout_rejected(self, cluster):
        from repro.core.allocation import TaskAllocation
        from repro.schedulers.base import SchedulingDecision

        decision = SchedulingDecision(
            allocations={"j": TaskAllocation(2, 1)},
            layouts={"j": {"node-0": (1, 1)}},
        )
        with pytest.raises(ValueError):
            decision.validate()

    def test_layout_without_allocation_rejected(self):
        from repro.schedulers.base import SchedulingDecision

        decision = SchedulingDecision(layouts={"j": {"node-0": (1, 1)}})
        with pytest.raises(ValueError):
            decision.validate()


class TestJobViewHelpers:
    def test_estimated_time(self):
        v = view("j", remaining=1000)
        t = v.estimated_time(4, 4)
        assert t == pytest.approx(1000 / v.speed(4, 4))

    def test_estimated_time_guards(self):
        v = view("j")
        assert v.estimated_time(0, 1) == float("inf")

        def broken(p, w):
            raise RuntimeError

        v_broken = JobView(spec=v.spec, remaining_steps=10, speed=broken)
        assert v_broken.estimated_time(1, 1) == float("inf")


class TestPolicyMatrix:
    """Every allocation x placement combination must produce a consistent,
    capacity-respecting decision -- the ablation hybrids of §6.4 all pass
    through this matrix."""

    ALLOCATIONS = ("optimus", "drf", "tetris", "fifo", "srtf")
    PLACEMENTS = ("optimus", "spread", "pack")

    @pytest.mark.parametrize("allocation", ALLOCATIONS)
    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_combination(self, cluster, allocation, placement):
        scheduler = CompositeScheduler(allocation, placement)
        views = [view(f"j{i}", model=m) for i, m in enumerate(
            ("seq2seq", "cnn-rand", "resnet-50"))]
        decision = scheduler.schedule(cluster, views)
        decision.validate()
        # Placement never exceeds per-server capacity.
        for server in cluster:
            assert server.used.fits_within(server.capacity)
        # Whatever ran must include at least one job on this roomy cluster.
        assert decision.scheduled_jobs
