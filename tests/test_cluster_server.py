"""Tests for Server capacity bookkeeping."""

import pytest

from repro.cluster.resources import cpu_mem
from repro.cluster.server import ROLE_PS, ROLE_WORKER, Server
from repro.common.errors import CapacityError


@pytest.fixture
def server():
    return Server("node-0", cpu_mem(16, 64))


DEMAND = cpu_mem(5, 10)


class TestPlacement:
    def test_place_updates_used(self, server):
        server.place(("j1", ROLE_WORKER, 0), DEMAND)
        assert server.used == DEMAND
        assert server.available == cpu_mem(11, 54)

    def test_place_duplicate_rejected(self, server):
        server.place(("j1", ROLE_WORKER, 0), DEMAND)
        with pytest.raises(CapacityError):
            server.place(("j1", ROLE_WORKER, 0), DEMAND)

    def test_place_beyond_capacity_rejected(self, server):
        for i in range(3):
            server.place(("j1", ROLE_WORKER, i), DEMAND)
        with pytest.raises(CapacityError):
            server.place(("j1", ROLE_WORKER, 3), DEMAND)

    def test_can_fit(self, server):
        assert server.can_fit(cpu_mem(16, 64))
        assert not server.can_fit(cpu_mem(17, 64))

    def test_release_returns_demand(self, server):
        server.place(("j1", ROLE_PS, 0), DEMAND)
        released = server.release(("j1", ROLE_PS, 0))
        assert released == DEMAND
        assert server.used.is_zero()

    def test_release_unknown_rejected(self, server):
        with pytest.raises(CapacityError):
            server.release(("nope", ROLE_PS, 0))

    def test_release_job_releases_all_roles(self, server):
        server.place(("j1", ROLE_WORKER, 0), DEMAND)
        server.place(("j1", ROLE_PS, 0), DEMAND)
        server.place(("j2", ROLE_WORKER, 0), DEMAND)
        assert server.release_job("j1") == 2
        assert server.task_count() == 1


class TestQueries:
    def test_task_count_filters(self, server):
        server.place(("j1", ROLE_WORKER, 0), DEMAND)
        server.place(("j1", ROLE_WORKER, 1), DEMAND)
        server.place(("j2", ROLE_PS, 0), DEMAND)
        assert server.task_count() == 3
        assert server.task_count(job_id="j1") == 2
        assert server.task_count(role=ROLE_PS) == 1
        assert server.task_count(job_id="j1", role=ROLE_PS) == 0

    def test_utilization(self, server):
        assert server.utilization("cpu") == 0.0
        server.place(("j1", ROLE_WORKER, 0), cpu_mem(8, 10))
        assert server.utilization("cpu") == pytest.approx(0.5)

    def test_utilization_unknown_type(self, server):
        assert server.utilization("gpu") == 0.0

    def test_task_keys(self, server):
        key = ("j1", ROLE_WORKER, 0)
        server.place(key, DEMAND)
        assert server.task_keys == (key,)
