"""Tests for heterogeneous resource demands: GPU workers + CPU-only PS.

The paper's testbed mixes CPU and GPU servers (§6.1), and its DRF
machinery (dominant resources, Eqn 9's per-dominant-resource gains) exists
precisely because workers and parameter servers can dominate in *different*
resource types. These tests exercise that path end to end.
"""


from repro.cluster import Cluster, ResourceVector, Server, cpu_mem
from repro.core.allocation import AllocationRequest, allocate
from repro.core.placement import PlacementRequest, place_jobs
from repro.schedulers import JobView, OptimusScheduler
from repro.sim import SimConfig, simulate
from repro.workloads import StepTimeModel, make_job

GPU_WORKER = ResourceVector({"cpu": 2, "memory": 8, "gpu": 1})
CPU_PS = cpu_mem(4, 8)


def gpu_job(job_id, model="resnet-50", **kwargs):
    return make_job(
        model,
        mode="sync",
        job_id=job_id,
        worker_demand=GPU_WORKER,
        ps_demand=CPU_PS,
        **kwargs,
    )


def mixed_cluster():
    servers = [
        Server(f"gpu-{i}", ResourceVector({"cpu": 8, "memory": 48, "gpu": 2}))
        for i in range(4)
    ]
    servers += [Server(f"cpu-{i}", cpu_mem(16, 80)) for i in range(4)]
    return Cluster(servers)


class TestAllocation:
    def test_dominant_resources_differ(self):
        cluster = mixed_cluster()
        capacity = cluster.total_capacity
        assert GPU_WORKER.dominant_resource(capacity) == "gpu"
        assert CPU_PS.dominant_resource(capacity) != "gpu"

    def test_allocation_respects_gpu_capacity(self):
        cluster = mixed_cluster()
        spec = gpu_job("j")
        truth = StepTimeModel(spec.profile, "sync")
        request = AllocationRequest(
            job_id="j",
            remaining_work=1e9,
            speed=lambda p, w: truth.speed(p, w),
            worker_demand=GPU_WORKER,
            ps_demand=CPU_PS,
        )
        result = allocate([request], cluster.total_capacity)
        alloc = result.allocations["j"]
        assert alloc.workers <= 8  # only 8 GPUs exist
        assert alloc.workers >= 1 and alloc.ps >= 1

    def test_gpu_contention_starves_late_jobs(self):
        cluster = Cluster([Server("g", ResourceVector({"cpu": 8, "memory": 32, "gpu": 1}))])
        requests = [
            AllocationRequest(
                job_id=f"j{i}",
                remaining_work=1000,
                speed=lambda p, w: float(w),
                worker_demand=GPU_WORKER,
                ps_demand=CPU_PS,
            )
            for i in range(2)
        ]
        result = allocate(requests, cluster.total_capacity)
        # Only one starter pair fits the single GPU.
        assert result.starved == ("j1",)


class TestPlacement:
    def test_gpu_workers_land_on_gpu_servers(self):
        cluster = mixed_cluster()
        request = PlacementRequest(
            job_id="j",
            workers=4,
            ps=4,
            worker_demand=GPU_WORKER,
            ps_demand=CPU_PS,
        )
        result = place_jobs(cluster, [request])
        assert "j" in result.layouts
        for server_name, (n_workers, _) in result.layouts["j"].items():
            if n_workers:
                assert cluster.server(server_name).capacity.get("gpu") > 0

    def test_unplaceable_when_gpus_exhausted(self):
        cluster = Cluster(
            [Server("g", ResourceVector({"cpu": 16, "memory": 64, "gpu": 2}))]
        )
        request = PlacementRequest(
            job_id="j", workers=3, ps=1,
            worker_demand=GPU_WORKER, ps_demand=CPU_PS,
        )
        result = place_jobs(cluster, [request])
        assert result.unplaced == ("j",)


class TestEndToEnd:
    def test_simulation_with_gpu_jobs(self):
        jobs = [
            gpu_job("a", model="inception-bn", dataset_scale=0.3),
            gpu_job("b", model="cnn-rand"),
        ]
        result = simulate(
            mixed_cluster(),
            OptimusScheduler(),
            jobs,
            SimConfig(seed=3, estimator_mode="oracle"),
        )
        assert result.all_finished

    def test_scheduler_fills_gpus_not_more(self):
        spec = gpu_job("j")
        truth = StepTimeModel(spec.profile, "sync")
        view = JobView(
            spec=spec,
            remaining_steps=1e9,
            speed=lambda p, w: truth.speed(p, w),
            observation_count=100,
        )
        cluster = mixed_cluster()
        decision = OptimusScheduler().schedule(cluster, [view])
        alloc = decision.allocations["j"]
        assert 1 <= alloc.workers <= 8
        decision.validate()
