"""Tests for the online convergence estimator (§3.1)."""

import pytest

from repro.common.errors import FittingError
from repro.core.convergence import ConvergenceEstimator
from repro.workloads import MODEL_ZOO, LossEmitter


def feed(estimator, emitter, start_epoch, end_epoch, spe, stride=25):
    obs = emitter.observe_range(int(start_epoch * spe), int(end_epoch * spe), stride)
    estimator.add_observations((o.step, o.loss) for o in obs)


@pytest.fixture
def setup():
    profile = MODEL_ZOO["seq2seq"]
    spe = profile.steps_per_epoch("sync")
    emitter = LossEmitter(profile.loss, spe, seed=13)
    estimator = ConvergenceEstimator(threshold=0.002, steps_per_epoch=spe)
    return profile, spe, emitter, estimator


class TestDataCollection:
    def test_counts(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 2, spe)
        assert estimator.observation_count > 0
        assert estimator.latest_step > 0

    def test_cannot_fit_too_early(self, setup):
        *_, estimator = setup
        assert not estimator.can_fit
        with pytest.raises(FittingError):
            estimator.fit()

    def test_nonpositive_loss_rejected(self, setup):
        *_, estimator = setup
        with pytest.raises(FittingError):
            estimator.add_observation(1, 0.0)


class TestFitting:
    def test_fit_caches_between_refits(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 3, spe)
        first = estimator.fit()
        assert estimator.fit() is first  # no new data: cached
        feed(estimator, emitter, 3, 6, spe)
        assert estimator.fit() is not first  # enough new data: refit

    def test_force_refit(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 3, spe)
        first = estimator.fit()
        assert estimator.fit(force=True) is not first


class TestPrediction:
    def test_prediction_improves_with_progress(self, setup):
        """The Fig-6 property: more data, smaller prediction error."""
        profile, spe, emitter, estimator = setup
        truth_epochs = profile.loss.epochs_to_converge(0.002)
        truth_steps = truth_epochs * spe

        errors = []
        start = 0
        for end in (3, 10, 25, 45):
            feed(estimator, emitter, start, end, spe)
            start = end
            estimator.fit(force=True)
            predicted = estimator.predicted_total_steps()
            errors.append(abs(predicted - truth_steps) / truth_steps)
        # Late predictions must be decent and no worse than the worst
        # early prediction (strict monotonicity is not guaranteed: the
        # generator is deliberately outside the Eqn-1 family).
        assert errors[-1] < 0.35
        assert errors[-1] <= max(errors[0], errors[1]) + 1e-9

    def test_remaining_steps_decrease_with_progress(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 20, spe)
        early = estimator.remaining_steps(current_step=5 * spe)
        late = estimator.remaining_steps(current_step=15 * spe)
        assert late < early

    def test_remaining_steps_nonnegative(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 20, spe)
        assert estimator.remaining_steps(current_step=1e9) == 0.0

    def test_history_recorded(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 10, spe)
        estimator.remaining_steps(100)
        estimator.remaining_steps(200)
        assert len(estimator.prediction_history) == 2

    def test_prediction_errors_signed(self, setup):
        _, spe, emitter, estimator = setup
        feed(estimator, emitter, 0, 10, spe)
        estimator.remaining_steps(100)
        pairs = estimator.prediction_errors(true_total_steps=50 * spe)
        assert len(pairs) == 1
        progress, error = pairs[0]
        assert 0 <= progress <= 1

    def test_prediction_errors_validation(self, setup):
        *_, estimator = setup
        with pytest.raises(FittingError):
            estimator.prediction_errors(0)


class TestValidation:
    def test_constructor_guards(self):
        with pytest.raises(FittingError):
            ConvergenceEstimator(threshold=0, steps_per_epoch=10)
        with pytest.raises(FittingError):
            ConvergenceEstimator(threshold=0.01, steps_per_epoch=0)
