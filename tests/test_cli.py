"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_command(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_speed_validates_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["speed", "not-a-model"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.schedulers == ["optimus", "drf", "tetris"]
        assert args.estimator == "online"

    def test_arena_defaults(self):
        args = build_parser().parse_args(["arena"])
        assert args.policies == "optimus,goodput,oasis,drf"
        assert args.seed == 42
        assert args.baseline is None

    def test_simulate_policy_alias(self):
        args = build_parser().parse_args(["simulate", "--policy", "goodput"])
        assert args.scheduler == "goodput"


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet-50" in out
        assert "deepspeech2" in out

    def test_speed(self, capsys):
        assert main(["speed", "cnn-rand", "--max-tasks", "5"]) == 0
        out = capsys.readouterr().out
        assert "cnn-rand" in out
        assert "p=1" in out

    def test_partition(self, capsys):
        assert main(["partition", "resnet-50", "--num-ps", "8"]) == 0
        out = capsys.readouterr().out
        assert "paa" in out and "mxnet" in out

    def test_compare_tiny(self, capsys):
        code = main(
            [
                "compare",
                "--schedulers", "optimus", "drf",
                "--jobs", "2",
                "--servers", "4",
                "--window", "600",
                "--estimator", "oracle",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimus" in out and "drf" in out

    def test_arena_tiny_json(self, capsys, tmp_path):
        gate_path = tmp_path / "gate.json"
        code = main(
            [
                "arena",
                "--policies", "optimus,oasis",
                "--jobs", "2",
                "--servers", "4",
                "--window", "600",
                "--estimator", "oracle",
                "--json",
                "--gate-output", str(gate_path),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["baseline"] == "optimus"
        assert {p["policy"] for p in report["policies"]} == {"optimus", "oasis"}
        gate = json.loads(gate_path.read_text())
        assert "oasis_jct_ratio" in gate

    def test_arena_unknown_policy_fails(self, capsys):
        code = main(["arena", "--policies", "optimus,not-a-policy"])
        assert code != 0
