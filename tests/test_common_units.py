"""Tests for unit helpers."""


from repro.common.units import (
    GB,
    KB,
    MB,
    days,
    format_bytes,
    format_duration,
    hours,
    minutes,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB


class TestConversions:
    def test_minutes(self):
        assert minutes(10) == 600.0

    def test_hours(self):
        assert hours(2) == 7200.0

    def test_days(self):
        assert days(1) == 86400.0

    def test_fractional(self):
        assert minutes(0.5) == 30.0


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.0 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(128 * MB) == "128.0 MiB"

    def test_gib(self):
        assert format_bytes(3 * GB) == "3.0 GiB"

    def test_huge_values_use_tib(self):
        assert format_bytes(5000 * GB).endswith("TiB")


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(41.23) == "41.2s"

    def test_minutes_seconds(self):
        assert format_duration(125) == "2m 05s"

    def test_hours_minutes(self):
        assert format_duration(3 * 3600 + 240) == "3h 04m"

    def test_days(self):
        assert format_duration(2 * 86400 + 3 * 3600) == "2d 03h"

    def test_negative(self):
        assert format_duration(-90) == "-1m 30s"

    def test_zero(self):
        assert format_duration(0) == "0.0s"
