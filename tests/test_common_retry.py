"""Tests for the bounded retry/backoff helper (repro.common.retry)."""

import pytest

from repro.common.errors import ConfigurationError, KVStoreError, TransientKVError
from repro.common.rand import RandomSource
from repro.common.retry import RetryPolicy, call_with_retry


class Flaky:
    """Fails the first *failures* calls with TransientKVError, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientKVError(f"boom #{self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.8)

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=10.0, max_delay=0.5, jitter=0.0)
        assert policy.backoff(5) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, RandomSource(3).child("j").rng) for i in (1, 2, 3)]
        b = [policy.backoff(i, RandomSource(3).child("j").rng) for i in (1, 2, 3)]
        assert a == b
        # And jitter actually perturbs the nominal delay.
        nominal = [policy.backoff(i) for i in (1, 2, 3)]
        assert a != nominal

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.1)
        rng = RandomSource(0).child("j").rng
        for _ in range(100):
            delay = policy.backoff(1, rng)
            assert 0.9 <= delay <= 1.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_delay=0.01, base_delay=0.05)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff(0)


class TestCallWithRetry:
    def test_success_needs_no_retry(self):
        fn = Flaky(0)
        assert call_with_retry(fn) == "ok"
        assert fn.calls == 1

    def test_transient_errors_below_budget_invisible(self):
        fn = Flaky(3)
        assert call_with_retry(fn, policy=RetryPolicy(max_attempts=4)) == "ok"
        assert fn.calls == 4

    def test_exhaustion_raises_after_exact_attempts(self):
        fn = Flaky(100)
        with pytest.raises(TransientKVError):
            call_with_retry(fn, policy=RetryPolicy(max_attempts=4))
        assert fn.calls == 4  # documented budget: total tries, first included

    def test_exhaustion_error_is_a_kvstore_error(self):
        # Callers catching KVStoreError see the failure even if they do not
        # know about the transient subclass.
        with pytest.raises(KVStoreError):
            call_with_retry(Flaky(10), policy=RetryPolicy(max_attempts=2))

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise KVStoreError("permanent")

        with pytest.raises(KVStoreError):
            call_with_retry(fn, policy=RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_callbacks_and_sleep(self):
        retries = []
        exhausted = []
        slept = []
        with pytest.raises(TransientKVError):
            call_with_retry(
                Flaky(10),
                policy=RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0),
                sleep=slept.append,
                on_retry=lambda attempt, delay, exc: retries.append((attempt, delay)),
                on_exhausted=lambda attempts, exc: exhausted.append(attempts),
            )
        assert retries == [(1, 0.5), (2, 1.0)]
        assert slept == [0.5, 1.0]
        assert exhausted == [3]

    def test_custom_retry_on(self):
        def fn():
            raise ValueError("flaky-ish")

        with pytest.raises(ValueError):
            call_with_retry(fn, policy=RetryPolicy(max_attempts=2))
        # Declared retryable: consumed the budget instead of failing fast.
        calls = []

        def fn2():
            calls.append(1)
            raise ValueError("flaky-ish")

        with pytest.raises(ValueError):
            call_with_retry(
                fn2, policy=RetryPolicy(max_attempts=3), retry_on=(ValueError,)
            )
        assert len(calls) == 3
