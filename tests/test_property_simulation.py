"""Property-based invariants of the full simulation pipeline.

These use small, fast workloads so hypothesis can explore many random
configurations within a reasonable budget.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, cpu_mem
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import uniform_arrivals

FAST_MODELS = ["cnn-rand", "dssm", "kaggle-ndsb"]

SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run(seed, scheduler, num_jobs=3, servers=4, **cfg):
    jobs = uniform_arrivals(
        num_jobs=num_jobs, window=900, seed=seed, models=FAST_MODELS
    )
    cluster = Cluster.homogeneous(servers, cpu_mem(16, 64))
    config = SimConfig(
        seed=seed, estimator_mode="oracle", record_decisions=True, **cfg
    )
    return simulate(cluster, make_scheduler(scheduler), jobs, config)


class TestSimulationInvariants:
    @SIM_SETTINGS
    @given(seed=st.integers(0, 10_000), scheduler=st.sampled_from(
        ["optimus", "drf", "tetris", "fifo"]))
    def test_lifecycle_invariants(self, seed, scheduler):
        result = run(seed, scheduler)
        for record in result.jobs.values():
            if record.finished:
                assert record.completion_time > record.arrival_time
                assert record.jct > 0
            assert record.scaling_time >= 0
            assert record.num_scalings >= 0
        if result.all_finished:
            assert math.isfinite(result.makespan)
            last = max(r.completion_time for r in result.jobs.values())
            first = min(r.arrival_time for r in result.jobs.values())
            assert result.makespan == pytest.approx(last - first)

    @SIM_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_decisions_respect_capacity_every_interval(self, seed):
        result = run(seed, "optimus", servers=3)
        capacity_cpu = 3 * 16
        for decision in result.decisions:
            used = sum(alloc.total * 5 for alloc in decision.values())
            assert used <= capacity_cpu + 1e-9
            for alloc in decision.values():
                assert alloc.workers >= 1 and alloc.ps >= 1

    @SIM_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_determinism(self, seed):
        a = run(seed, "optimus")
        b = run(seed, "optimus")
        assert a.average_jct == b.average_jct
        assert a.makespan == b.makespan
        assert a.decisions == b.decisions

    @SIM_SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_timeline_utilisations_bounded(self, seed):
        result = run(seed, "drf")
        for slot in result.timeline:
            assert 0.0 <= slot.worker_utilization <= 1.0
            assert 0.0 <= slot.ps_utilization <= 1.0
            assert slot.running_tasks >= 2 * slot.running_jobs or slot.running_jobs == 0

    @SIM_SETTINGS
    @given(seed=st.integers(0, 5_000), fraction=st.floats(0.0, 0.7))
    def test_background_load_never_speeds_things_up(self, seed, fraction):
        from repro.sim import constant_load

        free = run(seed, "optimus")
        loaded = run(seed, "optimus", background_load=constant_load(fraction))
        if free.all_finished and loaded.all_finished:
            # The greedy marginal-gain allocator is not capacity-monotone:
            # shrinking the cluster occasionally steers it to a *better*
            # allocation sequence (e.g. seed 1509 at fraction 0.375 improves
            # JCT by ~5%). Only dramatic speedups would indicate a bug.
            assert loaded.average_jct >= free.average_jct * 0.85

    @SIM_SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_scaling_counts_match_decision_changes(self, seed):
        result = run(seed, "optimus")
        # Every recorded rescaling corresponds to an observable allocation
        # change in the decision trail (the converse does not hold exactly:
        # jobs pay a start cost on first launch too).
        changes = 0
        previous = {}
        for decision in result.decisions:
            for job_id, alloc in decision.items():
                if job_id in previous and previous[job_id] != alloc:
                    changes += 1
            previous = dict(decision)
        total_scalings = sum(r.num_scalings for r in result.jobs.values())
        assert total_scalings >= changes
