"""Tests for the scheduler policy registry."""

import pytest

from repro.common.errors import SchedulingError
from repro.schedulers import Scheduler, make_scheduler
from repro.schedulers.composite import CompositeScheduler
from repro.schedulers.registry import (
    ALLOCATION_REGISTRY,
    PLACEMENT_REGISTRY,
    POLICY_ENV_VAR,
    SCHEDULER_REGISTRY,
    available_policies,
    default_policy,
    register_allocation,
    register_scheduler,
    resolve_allocation,
    resolve_placement,
    resolve_scheduler,
)


class TestRegistries:
    def test_builtins_registered(self):
        assert {"optimus", "drf", "tetris", "fifo", "srtf", "goodput", "oasis"} <= set(
            SCHEDULER_REGISTRY
        )
        assert {"optimus", "drf", "tetris", "fifo", "srtf", "goodput", "oasis"} <= set(
            ALLOCATION_REGISTRY
        )
        assert {"optimus", "spread", "pack"} <= set(PLACEMENT_REGISTRY)

    def test_available_policies_sorted(self):
        names = available_policies("allocation")
        assert list(names) == sorted(names)

    def test_available_policies_unknown_kind(self):
        with pytest.raises(SchedulingError, match="unknown registry kind"):
            available_policies("frobnicator")

    def test_legacy_tables_are_registry_aliases(self):
        from repro.schedulers.policies import ALLOCATION_POLICIES, PLACEMENT_POLICIES

        assert ALLOCATION_POLICIES is ALLOCATION_REGISTRY
        assert PLACEMENT_POLICIES is PLACEMENT_REGISTRY


class TestRoundTrip:
    def test_every_registered_scheduler_resolves(self):
        for name in available_policies("scheduler"):
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler)
            assert scheduler.name  # non-empty display name

    def test_hybrid_names_resolve_to_composite(self):
        scheduler = resolve_scheduler("srtf+pack")
        assert isinstance(scheduler, CompositeScheduler)

    def test_every_half_resolves(self):
        for name in available_policies("allocation"):
            assert callable(resolve_allocation(name))
        for name in available_policies("placement"):
            assert callable(resolve_placement(name))


class TestLookupErrors:
    def test_unknown_scheduler_lists_alternatives(self):
        with pytest.raises(SchedulingError) as excinfo:
            resolve_scheduler("nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "optimus" in message and "goodput" in message and "oasis" in message

    def test_unknown_halves_list_alternatives(self):
        with pytest.raises(SchedulingError, match="optimus"):
            resolve_allocation("nope")
        with pytest.raises(SchedulingError, match="pack"):
            resolve_placement("nope")

    def test_never_a_bare_keyerror(self):
        for resolver in (resolve_allocation, resolve_placement, resolve_scheduler):
            try:
                resolver("definitely-not-registered")
            except SchedulingError:
                pass
            else:  # pragma: no cover - the resolver must raise
                raise AssertionError("lookup of an unknown name did not raise")

    def test_hybrid_with_unknown_half_raises(self):
        with pytest.raises(SchedulingError):
            resolve_scheduler("nope+pack")


class TestRegistration:
    def test_conflicting_registration_rejected(self):
        marker = object()
        register_allocation("test-conflict", lambda jobs, cap: {})
        try:
            with pytest.raises(SchedulingError, match="already registered"):
                register_allocation("test-conflict", lambda jobs, cap: marker)
        finally:
            ALLOCATION_REGISTRY.pop("test-conflict", None)

    def test_same_object_reregistration_is_idempotent(self):
        def policy(jobs, capacity):
            return {}

        register_allocation("test-idempotent", policy)
        try:
            register_allocation("test-idempotent", policy)  # no raise
        finally:
            ALLOCATION_REGISTRY.pop("test-idempotent", None)

    def test_decorator_form(self):
        @register_scheduler("test-decorated")
        class Dummy(CompositeScheduler):
            def __init__(self, **kwargs):
                super().__init__("fifo", "pack", name="test-decorated", **kwargs)

        try:
            assert isinstance(make_scheduler("test-decorated"), Dummy)
        finally:
            SCHEDULER_REGISTRY.pop("test-decorated", None)


class TestEnvironmentDefault:
    def test_default_policy_fallback(self, monkeypatch):
        monkeypatch.delenv(POLICY_ENV_VAR, raising=False)
        assert default_policy() == "optimus"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV_VAR, "drf")
        assert default_policy() == "drf"
        scheduler = make_scheduler(None)
        assert scheduler.name == "drf"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV_VAR, "drf")
        assert make_scheduler("oasis").name == "oasis"

    def test_env_naming_unknown_policy_raises_on_use(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV_VAR, "not-a-policy")
        with pytest.raises(SchedulingError, match="not-a-policy"):
            make_scheduler(None)
