"""Property tests for every arrival generator (hypothesis).

Shared contract: each generator returns jobs sorted by arrival time, every
arrival is non-negative, and every arrival lies inside the generator's
horizon (``window`` for uniform, ``duration`` for the rest).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.workloads import (
    bursty_arrivals,
    diurnal_arrivals,
    google_trace_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def assert_arrival_contract(jobs, horizon):
    times = [job.arrival_time for job in jobs]
    assert times == sorted(times)
    assert all(t >= 0.0 for t in times)
    assert all(t <= horizon for t in times)
    assert len({job.job_id for job in jobs}) == len(jobs)


class TestUniform:
    @settings(max_examples=25, deadline=None)
    @given(
        num_jobs=st.integers(1, 40),
        window=st.floats(0.0, 1e6, allow_nan=False),
        seed=seeds,
    )
    def test_contract(self, num_jobs, window, seed):
        jobs = uniform_arrivals(num_jobs=num_jobs, window=window, seed=seed)
        assert len(jobs) == num_jobs
        assert_arrival_contract(jobs, window)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            uniform_arrivals(num_jobs=0)
        with pytest.raises(ConfigurationError):
            uniform_arrivals(window=-1.0)


class TestPoisson:
    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(0.1, 20.0),
        interval=st.floats(10.0, 3600.0),
        duration=st.floats(100.0, 100_000.0),
        seed=seeds,
    )
    def test_contract(self, rate, interval, duration, seed):
        jobs = poisson_arrivals(
            rate_per_interval=rate, interval=interval, duration=duration, seed=seed
        )
        assert jobs  # at least one job even on degenerate draws
        assert_arrival_contract(jobs, duration)
        assert all(job.arrival_time < duration for job in jobs)

    def test_rejects_bad_args(self):
        for kwargs in (
            {"rate_per_interval": 0.0},
            {"interval": -1.0},
            {"duration": 0.0},
        ):
            with pytest.raises(ConfigurationError):
                poisson_arrivals(**kwargs)


class TestGoogleTrace:
    @settings(max_examples=25, deadline=None)
    @given(
        num_jobs=st.integers(1, 60),
        duration=st.floats(100.0, 100_000.0),
        num_spikes=st.integers(1, 8),
        spike_fraction=st.floats(0.0, 1.0),
        seed=seeds,
    )
    def test_contract(self, num_jobs, duration, num_spikes, spike_fraction, seed):
        jobs = google_trace_arrivals(
            num_jobs=num_jobs,
            duration=duration,
            num_spikes=num_spikes,
            spike_fraction=spike_fraction,
            seed=seed,
        )
        assert len(jobs) == num_jobs
        assert_arrival_contract(jobs, duration)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            google_trace_arrivals(num_spikes=0)
        with pytest.raises(ConfigurationError):
            google_trace_arrivals(spike_fraction=1.5)


class TestDiurnal:
    @settings(max_examples=25, deadline=None)
    @given(
        num_jobs=st.integers(1, 60),
        duration=st.floats(100.0, 400_000.0),
        period=st.floats(100.0, 200_000.0),
        peak_time=st.floats(0.0, 1.0),
        amplitude=st.floats(0.0, 0.999),
        seed=seeds,
    )
    def test_contract(self, num_jobs, duration, period, peak_time, amplitude, seed):
        jobs = diurnal_arrivals(
            num_jobs=num_jobs,
            duration=duration,
            period=period,
            peak_time=peak_time,
            amplitude=amplitude,
            seed=seed,
        )
        assert len(jobs) == num_jobs
        assert_arrival_contract(jobs, duration)

    def test_zero_amplitude_is_uniformlike(self):
        jobs = diurnal_arrivals(num_jobs=30, duration=1000.0, amplitude=0.0, seed=1)
        assert_arrival_contract(jobs, 1000.0)

    def test_rejects_bad_args(self):
        for kwargs in (
            {"amplitude": 1.0},
            {"amplitude": -0.1},
            {"peak_time": 1.5},
            {"duration": 0.0},
            {"period": -5.0},
            {"num_jobs": 0},
        ):
            with pytest.raises(ConfigurationError):
                diurnal_arrivals(**kwargs)


class TestBursty:
    @settings(max_examples=25, deadline=None)
    @given(
        num_jobs=st.integers(1, 60),
        duration=st.floats(100.0, 100_000.0),
        spike_width=st.floats(1.0, 5000.0),
        background_fraction=st.floats(0.0, 1.0),
        num_spikes=st.integers(1, 6),
        seed=seeds,
    )
    def test_contract(
        self, num_jobs, duration, spike_width, background_fraction, num_spikes, seed
    ):
        jobs = bursty_arrivals(
            num_jobs=num_jobs,
            duration=duration,
            spike_width=spike_width,
            background_fraction=background_fraction,
            num_spikes=num_spikes,
            seed=seed,
        )
        assert len(jobs) == num_jobs
        assert_arrival_contract(jobs, duration)

    @settings(max_examples=25, deadline=None)
    @given(
        spike_times=st.lists(st.floats(-1e5, 2e5, allow_nan=False), min_size=1, max_size=5),
        seed=seeds,
    )
    def test_explicit_spikes_clamped_into_horizon(self, spike_times, seed):
        jobs = bursty_arrivals(
            num_jobs=12,
            duration=10_000.0,
            spike_times=spike_times,
            background_fraction=0.0,
            seed=seed,
        )
        assert_arrival_contract(jobs, 10_000.0)

    def test_rejects_bad_args(self):
        for kwargs in (
            {"background_fraction": -0.5},
            {"background_fraction": 2.0},
            {"spike_width": 0.0},
            {"spike_times": []},
            {"duration": -1.0},
            {"num_jobs": 0},
        ):
            with pytest.raises(ConfigurationError):
                bursty_arrivals(**kwargs)
