"""The opt-in placement cache (layout memo) and its scheduler wiring.

Covers the unit-level contract of :class:`repro.core.placement.PlacementCache`
(keying, validation, invalidation) and its integration into
:class:`repro.schedulers.composite.CompositeScheduler`: replayed layouts on
unchanged allocations, cache drop on node events reported through
``notify_node_events``, and the fall-back to fresh placement when a cached
layout no longer fits the live cluster.
"""

from __future__ import annotations

from repro.cluster import Cluster, cpu_mem
from repro.core.placement import PlacementCache, PlacementRequest
from repro.obs import MetricsRegistry
from repro.schedulers import JobView, make_scheduler
from repro.workloads import make_job

WORKER_DEMAND = cpu_mem(2, 4)
PS_DEMAND = cpu_mem(1, 2)

FULL_BLOCK = cpu_mem(16, 80)  # one whole server worth of resources


def request(job_id="job-a", workers=3, ps=2):
    return PlacementRequest(
        job_id=job_id,
        workers=workers,
        ps=ps,
        worker_demand=WORKER_DEMAND,
        ps_demand=PS_DEMAND,
    )


def cluster(nodes=4):
    return Cluster.homogeneous(nodes, cpu_mem(16, 80))


class TestPlacementCacheUnit:
    def test_lookup_misses_until_stored(self):
        cache = PlacementCache()
        assert cache.lookup(request()) is None
        cache.store(request(), {"node-0": (3, 2)})
        assert cache.lookup(request()) == {"node-0": (3, 2)}
        assert len(cache) == 1

    def test_changed_allocation_misses(self):
        cache = PlacementCache()
        cache.store(request(workers=3, ps=2), {"node-0": (3, 2)})
        assert cache.lookup(request(workers=4, ps=2)) is None
        assert cache.lookup(request(workers=3, ps=1)) is None

    def test_changed_demand_shape_misses(self):
        cache = PlacementCache()
        cache.store(request(), {"node-0": (3, 2)})
        fatter = PlacementRequest(
            job_id="job-a",
            workers=3,
            ps=2,
            worker_demand=cpu_mem(4, 8),
            ps_demand=PS_DEMAND,
        )
        assert cache.lookup(fatter) is None

    def test_store_copies_the_layout(self):
        cache = PlacementCache()
        layout = {"node-0": (3, 2)}
        cache.store(request(), layout)
        layout["node-1"] = (1, 0)  # mutating the caller's dict
        assert cache.lookup(request()) == {"node-0": (3, 2)}

    def test_forget_job(self):
        cache = PlacementCache()
        cache.store(request(), {"node-0": (3, 2)})
        cache.forget_job("job-a")
        assert cache.lookup(request()) is None

    def test_invalidate_all_counts_dropped_entries(self):
        cache = PlacementCache()
        cache.store(request("a"), {"node-0": (3, 2)})
        cache.store(request("b"), {"node-1": (3, 2)})
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.invalidations == 2
        cache.invalidate_all()  # idempotent on an empty cache
        assert cache.invalidations == 2

    def test_validate_accepts_fitting_layout(self):
        cache = PlacementCache()
        assert cache.validate(cluster(), request(), {"node-0": (3, 2)})

    def test_validate_rejects_unknown_server(self):
        cache = PlacementCache()
        assert not cache.validate(cluster(), request(), {"node-99": (3, 2)})

    def test_validate_rejects_full_server(self):
        c = cluster()
        c.place("node-0", ("blocker", "worker", 0), FULL_BLOCK)
        cache = PlacementCache()
        assert not cache.validate(c, request(), {"node-0": (3, 2)})
        # other servers still fine
        assert cache.validate(c, request(), {"node-1": (3, 2)})


def views_for(num_jobs=4):
    """Stable job views: the allocator grants the same counts each round."""
    views = []
    for i in range(num_jobs):
        spec = make_job(
            "cnn-rand",
            mode="sync",
            job_id=f"job-{i}",
            worker_demand=WORKER_DEMAND,
            ps_demand=PS_DEMAND,
        )
        views.append(
            JobView(
                spec=spec,
                remaining_steps=5e4 * (i + 1),
                speed=lambda p, w: w / (1.0 + 2.0 * w / p + 0.01 * w),
            )
        )
    return views


class TestSchedulerIntegration:
    def make(self, metrics=None):
        scheduler = make_scheduler("optimus", placement_cache=True)
        if metrics is not None:
            scheduler.instrument(metrics=metrics)
        return scheduler

    def test_second_round_replays_layouts(self):
        metrics = MetricsRegistry()
        scheduler = self.make(metrics)
        views = views_for()
        first = scheduler.schedule(cluster(), views)
        assert scheduler.placement_cache.hits == 0
        second = scheduler.schedule(cluster(), views)
        cache = scheduler.placement_cache
        assert cache.hits == len(second.layouts)
        assert second.layouts == first.layouts
        assert second.allocations == first.allocations
        counters = metrics.snapshot()["counters"]
        assert counters["placement.cache_hits"] == cache.hits

    def test_off_by_default(self):
        scheduler = make_scheduler("optimus")
        assert scheduler.placement_cache is None
        # and the no-op node-event hook must not blow up without a cache
        scheduler.notify_node_events(failed=["node-0"])

    def test_node_events_drop_the_cache(self):
        metrics = MetricsRegistry()
        scheduler = self.make(metrics)
        views = views_for()
        scheduler.schedule(cluster(), views)
        assert len(scheduler.placement_cache) > 0
        scheduler.notify_node_events(failed=["node-1"])
        cache = scheduler.placement_cache
        assert len(cache) == 0
        assert cache.invalidations > 0
        counters = metrics.snapshot()["counters"]
        assert counters["placement.cache_invalidations"] == 1.0
        # next round starts cold: no hits added
        scheduler.schedule(cluster(), views)
        assert cache.hits == 0

    def test_stale_layout_falls_back_to_fresh_placement(self):
        scheduler = self.make()
        views = views_for()
        first = scheduler.schedule(cluster(), views)
        # Fill every server the cached layouts use, so validation fails
        # and the jobs must be re-placed from scratch on the spare nodes.
        crowded = cluster(nodes=8)
        used_servers = {
            name for layout in first.layouts.values() for name in layout
        }
        for i, name in enumerate(sorted(used_servers)):
            crowded.place(name, (f"blocker-{i}", "worker", 0), FULL_BLOCK)
        second = scheduler.schedule(crowded, views)
        cache = scheduler.placement_cache
        assert cache.hits == 0
        assert cache.misses >= len(second.layouts)
        assert len(second.layouts) > 0
        for layout in second.layouts.values():
            assert not set(layout) & used_servers

    def test_changed_allocation_is_not_replayed(self):
        scheduler = self.make()
        views = views_for()
        scheduler.schedule(cluster(), views)
        # Shrink the fleet: less capacity -> different task counts -> the
        # cache keys no longer match and nothing is replayed blindly.
        small = cluster(nodes=2)
        decision = scheduler.schedule(small, views)
        decision.validate()
        for job_id, layout in decision.layouts.items():
            alloc = decision.allocations[job_id]
            placed = [sum(c) for c in layout.values()]
            assert sum(placed) == alloc.workers + alloc.ps
