"""The write-ahead intent log, durable managed-job set, monotonic
checkpoints, and reconcile's graceful-degradation paths (§5.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import cpu_mem
from repro.common.errors import KVStoreError
from repro.deploy import ControlLoop
from repro.k8s import (
    INTENT_CHECKPOINTED,
    INTENT_DONE,
    INTENT_LAUNCHING,
    INTENT_TORN_DOWN,
    APIServer,
    JobController,
    JobIntent,
    JobTarget,
)
from repro.k8s.kvstore import KVStore
from repro.schedulers import JobView, OptimusScheduler
from repro.workloads import StepTimeModel, make_job

DEMAND = cpu_mem(2, 4)


@pytest.fixture
def api():
    server = APIServer()
    server.register_node("n0", cpu_mem(16, 64))
    server.register_node("n1", cpu_mem(16, 64))
    return server


@pytest.fixture
def controller(api):
    return JobController(api)


def target(job_id, layout):
    return JobTarget(
        job_id=job_id, worker_demand=DEMAND, ps_demand=DEMAND, layout=layout
    )


def view(job_id, model="seq2seq"):
    spec = make_job(model, mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=50_000,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


class TestIntentRecords:
    def test_json_roundtrip(self):
        intent = JobIntent.for_target(
            target("a", {"n0": (2, 1), "n1": (1, 0)}), INTENT_LAUNCHING
        )
        assert JobIntent.from_json(intent.to_json()) == intent

    def test_teardown_intent_has_no_target(self):
        intent = JobIntent.for_teardown("a", INTENT_CHECKPOINTED)
        assert intent.as_target() is None

    def test_successful_rescale_leaves_sealed_intent(self, api, controller):
        controller.reconcile([target("a", {"n0": (1, 1)})])
        intent = controller.load_intent("a")
        assert intent is not None
        assert intent.phase == INTENT_DONE
        assert intent.layout == {"n0": (1, 1)}

    def test_teardown_to_zero_clears_intent_and_managed(self, api, controller):
        controller.adopt_job("a")
        controller.reconcile([target("a", {"n0": (1, 1)})])
        controller.reconcile([])
        assert controller.load_intent("a") is None
        assert "a" not in controller.managed_jobs()
        assert api.list_pods(job_id="a") == []


class TestManagedSet:
    def test_adopt_release_roundtrip(self, controller):
        controller.adopt_job("a")
        controller.adopt_job("b")
        assert controller.managed_jobs() == {"a", "b"}
        controller.release_job("a")
        assert controller.managed_jobs() == {"b"}

    def test_adopt_is_idempotent(self, api, controller):
        controller.adopt_job("a")
        revision = api.store.revision
        controller.adopt_job("a")
        assert api.store.revision == revision

    def test_loop_persists_managed_set_before_reconcile(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 0.0})
        assert loop.controller.managed_jobs() == {"a"}
        # Job leaves the view -> torn down and durably released.
        loop.step([], progress={"a": 500.0})
        assert loop.controller.managed_jobs() == set()


class TestMonotonicCheckpoints:
    def test_regression_is_dropped(self, controller):
        assert controller.save_checkpoint("a", 1_000.0)
        assert not controller.save_checkpoint("a", 400.0)
        assert controller.load_checkpoint("a") == 1_000.0

    def test_equal_and_forward_accepted(self, controller):
        assert controller.save_checkpoint("a", 1_000.0)
        assert controller.save_checkpoint("a", 1_000.0)
        assert controller.save_checkpoint("a", 2_000.0)
        assert controller.load_checkpoint("a") == 2_000.0

    def test_force_resets(self, controller):
        controller.save_checkpoint("a", 1_000.0)
        assert controller.save_checkpoint("a", 0.0, force=True)
        assert controller.load_checkpoint("a") == 0.0

    def test_reconcile_without_progress_keeps_newer_checkpoint(
        self, api, controller
    ):
        controller.reconcile([target("a", {"n0": (1, 1)})], {"a": 100.0})
        controller.reconcile([target("a", {"n0": (1, 1)})], {"a": 5_000.0})
        assert controller.load_checkpoint("a") == 5_000.0
        # A rescale pass with no progress reading (e.g. metrics hiccup)
        # must not clobber the stored 5000 with the default 0.0.
        controller.reconcile([target("a", {"n0": (2, 1)})])
        assert controller.load_checkpoint("a") == 5_000.0


class TestDeletePodMissingNode:
    def test_vanished_node_releases_nothing_but_deletes_pod(self, api):
        controller = JobController(api)
        controller.reconcile([target("a", {"n0": (1, 1)})])
        api.remove_node("n0")
        for pod in list(api.list_pods(job_id="a")):
            assert api.delete_pod(pod.name)
        assert api.list_pods(job_id="a") == []

    def test_transient_store_error_still_raises(self):
        from repro.faults import FlakyKVStore

        api = APIServer(store=FlakyKVStore(KVStore(), error_rate=1.0))
        with pytest.raises(KVStoreError):
            api.register_node("n0", cpu_mem(16, 64))


class TestGracefulTeardownDegradation:
    def test_teardown_failure_recorded_not_raised(self, api, monkeypatch):
        controller = JobController(api)
        controller.adopt_job("a")
        controller.adopt_job("b")
        controller.reconcile(
            [target("a", {"n0": (1, 1)}), target("b", {"n1": (1, 1)})]
        )

        real_put = api.store.put

        def failing_put(key, value, lease=None):
            if key.startswith("/intents/a"):
                raise KVStoreError("etcd unavailable")
            return real_put(key, value, lease=lease)

        monkeypatch.setattr(api.store, "put", failing_put)
        report = controller.reconcile([], raise_on_failure=False)
        assert report.jobs_failed == ("a",)
        # Job b's teardown still went through.
        assert api.list_pods(job_id="b") == []
        # Job a stays owned for the next pass to retry.
        assert "a" in controller.managed_jobs()

        monkeypatch.undo()
        retry = controller.reconcile([], raise_on_failure=False)
        assert retry.jobs_failed == ()
        assert api.list_pods(job_id="a") == []

    def test_drain_degrades_gracefully(self, api, monkeypatch):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a"), view("b")], progress={"a": 0.0, "b": 0.0})

        real_put = api.store.put

        def failing_put(key, value, lease=None):
            if key.startswith("/intents/a"):
                raise KVStoreError("etcd unavailable")
            return real_put(key, value, lease=lease)

        monkeypatch.setattr(api.store, "put", failing_put)
        report = loop.drain(progress={"a": 900.0, "b": 900.0})
        assert report.jobs_failed == ("a",)
        assert api.list_pods(job_id="b") == []

        monkeypatch.undo()
        retry = loop.drain(progress={"a": 950.0})
        assert retry.jobs_failed == ()
        assert api.list_pods(job_id="a") == []


LAYOUTS = st.dictionaries(
    st.sampled_from(["n0", "n1"]),
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=2,
).filter(lambda d: any(nw + np_ > 0 for nw, np_ in d.values()))


class TestReconcileIdempotency:
    @settings(max_examples=40, deadline=None)
    @given(
        layouts=st.lists(LAYOUTS, min_size=1, max_size=3),
        progress=st.floats(0.0, 1e6),
    )
    def test_second_identical_pass_is_a_noop(self, layouts, progress):
        """Property: reconciling the same targets twice does zero pod
        operations the second time and leaves the store unchanged."""
        api = APIServer()
        api.register_node("n0", cpu_mem(64, 256))
        api.register_node("n1", cpu_mem(64, 256))
        controller = JobController(api)
        targets = [
            target(f"job-{i}", layout) for i, layout in enumerate(layouts)
        ]
        job_progress = {t.job_id: progress for t in targets}

        controller.reconcile(targets, job_progress)
        revision = api.store.revision
        pods = {p.name: p.node for p in api.list_pods()}

        report = controller.reconcile(targets, job_progress)

        assert report.pods_created == 0
        assert report.pods_deleted == 0
        assert report.jobs_scaled == ()
        assert {p.name: p.node for p in api.list_pods()} == pods
        # The only permissible writes are progress-checkpoint refreshes,
        # which here carry identical values -> skipped by the monotonic
        # guard only when lower; identical values do rewrite. Everything
        # else (intents, managed set, pods, nodes) is untouched.
        intents = controller.list_intents()
        assert all(i.phase == INTENT_DONE for i in intents.values())
        assert api.store.revision - revision <= len(targets)

    def test_replay_is_idempotent(self, api, controller):
        controller.adopt_job("a")
        controller.save_checkpoint("a", 100.0)
        controller._put_intent(
            JobIntent.for_target(
                target("a", {"n0": (1, 1)}), INTENT_TORN_DOWN
            )
        )
        first = controller.replay_intents()
        assert [(j, o) for j, _, o in first] == [("a", "completed")]
        pods = {p.name: p.node for p in api.list_pods()}
        assert controller.replay_intents() == []
        assert {p.name: p.node for p in api.list_pods()} == pods
