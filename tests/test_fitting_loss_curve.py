"""Tests for the Eqn-1 convergence-curve fitter."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import FittingError
from repro.fitting.loss_curve import LossCurveFit, fit_loss_curve
from repro.workloads import MODEL_ZOO, LossEmitter


def eqn1(steps, b0, b1, b2):
    return [1.0 / (b0 * k + b1) + b2 for k in steps]


class TestFitOnExactEqn1Data:
    def test_recovers_coefficients(self):
        steps = list(range(0, 2000, 20))
        losses = eqn1(steps, 2e-3, 1.0, 0.1)
        fit = fit_loss_curve(steps, losses, preprocess=False)
        assert fit.beta0 == pytest.approx(2e-3, rel=0.05)
        assert fit.beta1 == pytest.approx(1.0, rel=0.05)
        assert fit.beta2 == pytest.approx(0.1, abs=0.02)
        assert fit.residual < 1e-3

    def test_predict_matches_truth(self):
        steps = list(range(0, 1000, 10))
        losses = eqn1(steps, 1e-3, 1.0, 0.05)
        fit = fit_loss_curve(steps, losses, preprocess=False)
        for k in (0, 100, 500, 2000):
            assert fit.predict(k) == pytest.approx(eqn1([k], 1e-3, 1.0, 0.05)[0], rel=0.02)

    @settings(max_examples=20, deadline=None)
    @given(
        b0=st.floats(1e-4, 1e-2),
        b2=st.floats(0.0, 0.4),
    )
    def test_low_residual_across_family(self, b0, b2):
        steps = list(range(0, 3000, 30))
        losses = eqn1(steps, b0, 1.0, b2)
        fit = fit_loss_curve(steps, losses, preprocess=False)
        assert fit.residual < 5e-3


class TestFitOnNoisyGroundTruth:
    def test_fits_model_zoo_curves(self):
        """Fits against the mixture generator stay reasonably tight (Fig 7)."""
        profile = MODEL_ZOO["seq2seq"]
        spe = profile.steps_per_epoch("sync")
        emitter = LossEmitter(profile.loss, spe, seed=11)
        obs = emitter.observe_range(0, int(30 * spe), stride=100)
        fit = fit_loss_curve([o.step for o in obs], [o.loss for o in obs])
        assert fit.residual < 0.05
        assert fit.num_points == len(obs)

    def test_scale_roundtrip(self):
        profile = MODEL_ZOO["seq2seq"]
        spe = profile.steps_per_epoch("sync")
        emitter = LossEmitter(profile.loss, spe, initial_loss=6.0, seed=11)
        obs = emitter.observe_range(0, int(20 * spe), stride=100)
        fit = fit_loss_curve([o.step for o in obs], [o.loss for o in obs])
        # predict_raw is in the emitter's raw units.
        assert fit.predict_raw(0) == pytest.approx(6.0, rel=0.15)


class TestConvergencePrediction:
    @pytest.fixture
    def fit(self):
        steps = list(range(0, 5000, 25))
        losses = eqn1(steps, 1e-3, 1.0, 0.05)
        return fit_loss_curve(steps, losses, preprocess=False)

    def test_epoch_decrease_positive_decreasing(self, fit):
        d = [fit.epoch_decrease(e, steps_per_epoch=100) for e in range(1, 30)]
        assert all(x > 0 for x in d)
        assert d[0] > d[-1]

    def test_epochs_to_converge_monotone_in_threshold(self, fit):
        assert fit.epochs_to_converge(0.0001, 100) >= fit.epochs_to_converge(0.01, 100)

    def test_epochs_to_converge_is_first_crossing(self, fit):
        epochs = fit.epochs_to_converge(0.001, 100, patience=1)
        assert fit.epoch_decrease(epochs, 100) < 0.001
        assert fit.epoch_decrease(epochs - 1, 100) >= 0.001

    def test_patience_shifts_convergence(self, fit):
        assert fit.epochs_to_converge(0.001, 100, patience=3) == (
            fit.epochs_to_converge(0.001, 100, patience=1) + 2
        )

    def test_steps_and_remaining(self, fit):
        total = fit.steps_to_converge(0.001, 100)
        assert fit.remaining_steps(0, 0.001, 100) == pytest.approx(total)
        assert fit.remaining_steps(total + 50, 0.001, 100) == 0.0

    def test_flat_fit_converges_immediately(self):
        flat = LossCurveFit(beta0=0.0, beta1=2.0, beta2=0.0, residual=0.0, num_points=5)
        assert flat.epochs_to_converge(0.001, 100, patience=2) == 2

    def test_validation(self, fit):
        with pytest.raises(FittingError):
            fit.epochs_to_converge(0, 100)
        with pytest.raises(FittingError):
            fit.epochs_to_converge(0.01, 0)
        with pytest.raises(FittingError):
            fit.predict(-1)


class TestFitValidation:
    def test_too_few_points(self):
        with pytest.raises(FittingError):
            fit_loss_curve([1, 2, 3], [3.0, 2.0, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(FittingError):
            fit_loss_curve([1, 2, 3, 4], [1.0, 2.0])

    def test_nonpositive_losses(self):
        with pytest.raises(FittingError):
            fit_loss_curve([1, 2, 3, 4, 5], [5.0, 4.0, 3.0, -1.0, 2.0], preprocess=False)

    def test_unsorted_input_accepted(self):
        steps = [300, 100, 0, 200, 400]
        losses = eqn1(steps, 1e-3, 1.0, 0.1)
        fit = fit_loss_curve(steps, losses, preprocess=False)
        assert fit.residual < 0.01

    def test_outliers_handled_by_preprocessing(self):
        steps = list(range(0, 1200, 10))
        losses = eqn1(steps, 1e-3, 1.0, 0.1)
        losses[40] *= 10  # a big spike mid-run
        with_pre = fit_loss_curve(steps, losses, preprocess=True)
        assert with_pre.residual < 0.02
