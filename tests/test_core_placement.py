"""Tests for the §4.2 task-placement scheme and Theorem 1's consequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import PlacementError
from repro.core.placement import (
    PlacementRequest,
    place_jobs,
    split_evenly,
    transfer_units,
)

DEMAND = cpu_mem(5, 10)


def req(job_id, workers, ps):
    return PlacementRequest(
        job_id=job_id,
        workers=workers,
        ps=ps,
        worker_demand=DEMAND,
        ps_demand=DEMAND,
    )


class TestSplitEvenly:
    def test_exact_division(self):
        assert split_evenly(6, 3) == [2, 2, 2]

    def test_remainder_goes_first(self):
        assert split_evenly(7, 3) == [3, 2, 2]

    def test_zero_count(self):
        assert split_evenly(0, 3) == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(PlacementError):
            split_evenly(3, 0)
        with pytest.raises(PlacementError):
            split_evenly(-1, 3)

    @given(count=st.integers(0, 1000), buckets=st.integers(1, 50))
    def test_properties(self, count, buckets):
        parts = split_evenly(count, buckets)
        assert sum(parts) == count
        assert max(parts) - min(parts) <= 1
        assert parts == sorted(parts, reverse=True)


class TestPlaceJobs:
    def test_small_job_packs_on_one_server(self, small_cluster):
        result = place_jobs(small_cluster, [req("j", 2, 1)])
        assert result.servers_used("j") == 1
        assert result.unplaced == ()

    def test_uses_fewest_servers(self, small_cluster):
        # 6 tasks at 5 CPU each need exactly 2 of the 16-CPU servers.
        result = place_jobs(small_cluster, [req("j", 4, 2)])
        assert result.servers_used("j") == 2

    def test_even_spread_across_servers(self, small_cluster):
        result = place_jobs(small_cluster, [req("j", 4, 2)])
        layout = result.layouts["j"]
        totals = [nw + np_ for nw, np_ in layout.values()]
        assert max(totals) - min(totals) <= 1

    def test_cluster_state_mutated(self, small_cluster):
        place_jobs(small_cluster, [req("j", 2, 2)])
        assert small_cluster.placed_task_count("j") == 4

    def test_layout_matches_allocation(self, small_cluster):
        result = place_jobs(small_cluster, [req("j", 5, 3)])
        layout = result.layouts["j"]
        assert sum(nw for nw, _ in layout.values()) == 5
        assert sum(np_ for _, np_ in layout.values()) == 3

    def test_smallest_job_first(self, small_cluster):
        """Anti-starvation: a small job must not be squeezed out by a big one."""
        big = req("big", 8, 8)  # 16 tasks: > 12-task capacity... can't fit
        small = req("small", 1, 1)
        result = place_jobs(small_cluster, [big, small])
        assert "small" in result.layouts

    def test_unplaceable_job_reported(self, small_cluster):
        result = place_jobs(small_cluster, [req("huge", 10, 10)])
        assert result.unplaced == ("huge",)
        assert small_cluster.placed_task_count() == 0

    def test_multiple_jobs_fill_cluster(self, small_cluster):
        requests = [req(f"j{i}", 2, 2) for i in range(3)]
        result = place_jobs(small_cluster, requests)
        assert len(result.layouts) == 3
        assert small_cluster.placed_task_count() == 12

    def test_order_preserved_when_sort_disabled(self, small_cluster):
        # With sorting off, the big job goes first and may crowd others out.
        big = req("big", 6, 6)  # 12 tasks fills 4 x 3-task servers exactly
        small = req("small", 1, 1)
        result = place_jobs(small_cluster, [big, small], sort_jobs=False)
        assert "big" in result.layouts
        assert result.unplaced == ("small",)

    def test_invalid_request(self):
        with pytest.raises(PlacementError):
            req("j", 0, 1)

    def test_prefers_available_servers(self, small_cluster):
        # Pre-load node-0 so it's the least available.
        small_cluster.place("node-0", ("other", "worker", 0), cpu_mem(12, 20))
        result = place_jobs(small_cluster, [req("j", 2, 1)])
        assert "node-0" not in result.layouts["j"]


class TestTheorem1:
    def test_fewer_servers_less_transfer(self):
        """Theorem 1 part 1: the fewest servers minimise transfer."""
        packed = {"s0": (2, 1), "s1": (2, 1)}
        spread = {"s0": (1, 1), "s1": (1, 1), "s2": (1, 0), "s3": (1, 0)}
        assert transfer_units(packed) < transfer_units(spread)

    def test_even_beats_uneven_on_same_servers(self):
        """Theorem 1 part 2: even per-server counts minimise the bottleneck."""
        even = {"s0": (2, 1), "s1": (2, 1)}
        uneven = {"s0": (3, 2), "s1": (1, 0)}
        assert transfer_units(even) <= transfer_units(uneven)

    def test_fig10_example(self):
        """The paper's Fig-10 worked example: (c) strictly beats (a) and (b).

        2 parameter servers + 4 workers on servers hosting 3 tasks each;
        per-pair data is 1 unit (model of 2 units over 2 ps). The paper
        computes transfer times 3, 3 and 2 for the three layouts.
        """
        a = {"s1": (1, 1), "s2": (1, 1), "s3": (2, 0)}
        b = {"s1": (2, 1), "s2": (1, 1), "s3": (1, 0)}
        c = {"s1": (2, 1), "s2": (2, 1)}
        # With unit model size and unit bandwidth the paper's counts are
        # 3, 3 and 2 transfer units respectively.
        assert transfer_units(a, model_units=2.0) == pytest.approx(3.0)
        assert transfer_units(b, model_units=2.0) == pytest.approx(3.0)
        assert transfer_units(c, model_units=2.0) == pytest.approx(2.0)

    def test_single_server_free(self):
        assert transfer_units({"s0": (4, 2)}) == 0.0

    def test_validation(self):
        with pytest.raises(PlacementError):
            transfer_units({"s0": (2, 0)})

    @settings(max_examples=40, deadline=None)
    @given(workers=st.integers(1, 12), ps=st.integers(1, 12), k=st.integers(1, 6))
    def test_even_split_is_optimal_among_k_server_layouts(self, workers, ps, k):
        """Perturbations of the even layout never beat it (Theorem 1).

        The theorem's hypothesis is an exactly-even deployment, i.e. k
        divides both task counts; remainder cases can be beaten by
        concentrating the leftover tasks.
        """
        if workers % k or ps % k:
            return
        even_w = split_evenly(workers, k)
        even_p = list(reversed(split_evenly(ps, k)))
        even = {
            f"s{i}": (even_w[i], even_p[i])
            for i in range(k)
            if even_w[i] or even_p[i]
        }
        base = transfer_units(even)
        # Move one worker from the first loaded server to the last. The
        # claim only covers layouts over the *same* server count (Theorem
        # 1 separately says fewer servers are better), so skip moves that
        # would empty a server.
        names = list(even)
        if len(names) >= 2 and even[names[0]][0] > 0:
            shifted = dict(even)
            w0, p0 = shifted[names[0]]
            w1, p1 = shifted[names[-1]]
            shifted[names[0]] = (w0 - 1, p0)
            shifted[names[-1]] = (w1 + 1, p1)
            if (w0 - 1, p0) == (0, 0):
                return
            assert transfer_units(shifted) >= base - 1e-9


class TestPlacementQuality:
    """place_jobs against brute force on tiny instances: the layout it
    picks must be transfer-optimal (or within a whisker) among all layouts
    using any number of servers."""

    def brute_force_best(self, workers, ps, num_servers, slots_per_server):

        best = None

        def layouts(count, servers):
            # All ways to distribute `count` identical tasks over servers.
            if servers == 1:
                yield (count,)
                return
            for first in range(count + 1):
                for rest in layouts(count - first, servers - 1):
                    yield (first,) + rest

        for w_split in layouts(workers, num_servers):
            for p_split in layouts(ps, num_servers):
                if any(
                    w + p > slots_per_server
                    for w, p in zip(w_split, p_split)
                ):
                    continue
                layout = {
                    f"s{i}": (w_split[i], p_split[i])
                    for i in range(num_servers)
                    if w_split[i] or p_split[i]
                }
                cost = transfer_units(layout)
                if best is None or cost < best:
                    best = cost
        return best

    @pytest.mark.parametrize("workers,ps", [(2, 1), (3, 2), (4, 2), (4, 4), (5, 3)])
    def test_within_optimal_transfer(self, workers, ps):
        num_servers, slots = 4, 3
        cluster = Cluster.homogeneous(num_servers, cpu_mem(15, 64))
        result = place_jobs(cluster, [req("j", workers, ps)])
        assert "j" in result.layouts
        chosen = transfer_units(result.layouts["j"])
        optimal = self.brute_force_best(workers, ps, num_servers, slots)
        assert chosen <= optimal + 1e-9 or chosen <= optimal * 1.25
