"""Tests for the model zoo and loss-curve ground truth."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.workloads.profiles import (
    MODEL_ZOO,
    LossCurveTruth,
    get_profile,
    solve_tail_scale,
    zoo_names,
)


class TestZoo:
    def test_has_nine_table1_models(self):
        assert len(MODEL_ZOO) == 9

    def test_lookup(self):
        assert get_profile("resnet-50").params_million == 25.0

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            get_profile("alexnet")

    def test_zoo_names_stable(self):
        assert zoo_names() == tuple(MODEL_ZOO)

    def test_table1_parameter_counts(self):
        # The public Table-1 metadata must match the paper.
        expected = {
            "resnext-110": 1.7,
            "resnet-50": 25.0,
            "inception-bn": 11.3,
            "kaggle-ndsb": 1.4,
            "cnn-rand": 6.0,
            "dssm": 1.5,
            "rnn-lstm": 4.7,
            "seq2seq": 9.1,
            "deepspeech2": 38.0,
        }
        for name, params in expected.items():
            assert MODEL_ZOO[name].params_million == params

    def test_table1_dataset_sizes(self):
        assert MODEL_ZOO["resnet-50"].dataset_examples == 1_313_788
        assert MODEL_ZOO["cnn-rand"].dataset_examples == 10_662
        assert MODEL_ZOO["deepspeech2"].dataset_examples == 45_000

    def test_network_types(self):
        assert MODEL_ZOO["resnet-50"].network_type == "CNN"
        assert MODEL_ZOO["seq2seq"].network_type == "RNN"

    def test_model_size_bytes(self):
        # 25M float32 parameters = 100 MB.
        assert MODEL_ZOO["resnet-50"].model_size_bytes == pytest.approx(1e8)

    def test_calibration_hits_target_epochs(self):
        for profile in MODEL_ZOO.values():
            actual = profile.loss.epochs_to_converge(0.002)
            assert actual == profile.target_epochs, profile.name

    def test_fig2_span_minutes_to_days(self):
        times = {n: p.single_gpu_training_time() for n, p in MODEL_ZOO.items()}
        assert times["cnn-rand"] < 600  # minutes
        assert times["resnet-50"] > 5 * 86400  # many days
        assert min(times, key=times.get) == "cnn-rand"
        assert max(times, key=times.get) == "resnet-50"

    def test_steps_per_epoch_modes(self):
        profile = MODEL_ZOO["resnet-50"]
        sync = profile.steps_per_epoch("sync")
        async_ = profile.steps_per_epoch("async")
        assert sync == pytest.approx(1_313_788 / 256)
        assert async_ == pytest.approx(1_313_788 / 32)

    def test_steps_per_epoch_scaling(self):
        profile = MODEL_ZOO["resnet-50"]
        assert profile.steps_per_epoch("sync", 0.5) == pytest.approx(
            profile.steps_per_epoch("sync") / 2
        )

    def test_steps_per_epoch_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            MODEL_ZOO["resnet-50"].steps_per_epoch("sync", 0.0)

    def test_with_overrides(self):
        profile = MODEL_ZOO["cnn-rand"].with_overrides(backward_time=9.0)
        assert profile.backward_time == 9.0
        assert MODEL_ZOO["cnn-rand"].backward_time != 9.0


class TestParameterBlocks:
    def test_deterministic(self):
        a = MODEL_ZOO["resnet-50"].parameter_blocks()
        b = MODEL_ZOO["resnet-50"].parameter_blocks()
        assert a == b

    def test_count_and_total(self):
        profile = MODEL_ZOO["resnet-50"]
        blocks = profile.parameter_blocks()
        assert len(blocks) == profile.num_param_blocks
        assert sum(blocks) == pytest.approx(25e6, rel=1e-6)

    def test_large_models_have_slicing_triggers(self):
        # MXNet's default threshold is 1e6 parameters; big models must have
        # at least one block above it so the §5.3 imbalance can manifest.
        for name in ("resnet-50", "deepspeech2", "inception-bn"):
            blocks = MODEL_ZOO[name].parameter_blocks()
            assert max(blocks) > 1e6, name

    def test_all_blocks_positive(self):
        for profile in MODEL_ZOO.values():
            assert all(b > 0 for b in profile.parameter_blocks())


class TestLossCurveTruth:
    @pytest.fixture
    def curve(self):
        return LossCurveTruth(plateau=0.1, exp_weight=0.4, exp_rate=0.3, tail_scale=0.05)

    def test_starts_at_one(self, curve):
        assert curve.loss(0) == pytest.approx(1.0)

    def test_monotone_decreasing(self, curve):
        values = [curve.loss(e) for e in range(0, 200, 5)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_bounded_below_by_plateau(self, curve):
        assert curve.loss(10_000) > curve.plateau

    def test_epoch_decrease_positive_and_shrinking(self, curve):
        decreases = [curve.epoch_decrease(e) for e in range(1, 50)]
        assert all(d > 0 for d in decreases)
        assert decreases[0] > decreases[-1]

    def test_convergence_monotone_in_threshold(self, curve):
        tight = curve.epochs_to_converge(0.0005)
        loose = curve.epochs_to_converge(0.01)
        assert tight >= loose

    def test_patience_delays_convergence(self, curve):
        assert curve.epochs_to_converge(0.002, patience=5) >= curve.epochs_to_converge(
            0.002, patience=1
        )

    def test_invalid_inputs(self, curve):
        with pytest.raises(ConfigurationError):
            curve.loss(-1)
        with pytest.raises(ConfigurationError):
            curve.epoch_decrease(0)
        with pytest.raises(ConfigurationError):
            curve.epochs_to_converge(0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LossCurveTruth(plateau=1.5, exp_weight=0.1, exp_rate=1, tail_scale=1)
        with pytest.raises(ConfigurationError):
            LossCurveTruth(plateau=0.5, exp_weight=0.6, exp_rate=1, tail_scale=1)
        with pytest.raises(ConfigurationError):
            LossCurveTruth(plateau=0.1, exp_weight=0.1, exp_rate=0, tail_scale=1)


class TestSolveTailScale:
    @settings(max_examples=25, deadline=None)
    @given(
        plateau=st.floats(0.02, 0.3),
        exp_weight=st.floats(0.1, 0.5),
        target=st.integers(5, 60),
    )
    def test_solution_hits_target_when_feasible(self, plateau, exp_weight, target):
        tail_weight = 1 - plateau - exp_weight
        max_epochs = tail_weight / (4 * 0.002)
        # The exponential component alone sets a floor on the convergence
        # epoch no tail_scale can undercut.
        min_epochs = LossCurveTruth(
            plateau, exp_weight, 0.3, 1e-8
        ).epochs_to_converge(0.002)
        scale = solve_tail_scale(plateau, exp_weight, 0.3, target)
        curve = LossCurveTruth(plateau, exp_weight, 0.3, scale)
        achieved = curve.epochs_to_converge(0.002)
        if min_epochs <= target <= max_epochs * 0.9:
            # Feasible targets are hit within the integer-rounding slack.
            assert abs(achieved - target) <= 2
        else:
            # Infeasible targets saturate at the family's floor/ceiling
            # (the exponential term can stretch the hyperbolic-only
            # ceiling by up to its own floor).
            assert achieved <= max_epochs + min_epochs + 3
            assert achieved >= min(min_epochs, target) - 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            solve_tail_scale(0.6, 0.5, 0.3, 10)  # weights sum past 1
        with pytest.raises(ConfigurationError):
            solve_tail_scale(0.1, 0.4, 0.3, 0)
