"""Tests for the public API surface: exports resolve, docstrings exist."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.cluster",
    "repro.common",
    "repro.core",
    "repro.datastore",
    "repro.deploy",
    "repro.fitting",
    "repro.k8s",
    "repro.ps",
    "repro.schedulers",
    "repro.sim",
    "repro.workloads",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__") or module_name == "repro.common"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_names_available(self):
        # The README's quickstart imports must keep working.
        from repro import (
            Cluster,
            SimConfig,
            cpu_mem,
            make_scheduler,
            simulate,
            uniform_arrivals,
        )

        assert callable(simulate)
        assert callable(make_scheduler)
        assert callable(cpu_mem)
        assert callable(uniform_arrivals)
        assert isinstance(Cluster, type)
        assert isinstance(SimConfig, type)


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_modules_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert undocumented == []

    def test_scheduler_methods_documented(self):
        from repro.schedulers import Scheduler

        assert Scheduler.schedule.__doc__


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        from repro.common import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_library_raises_its_own_errors(self):
        from repro.common.errors import ReproError
        from repro.workloads import get_profile

        with pytest.raises(ReproError):
            get_profile("not-a-model")
