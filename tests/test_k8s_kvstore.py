"""Tests for the etcd-like key/value store."""

import pytest

from repro.common.errors import KVStoreError
from repro.k8s.kvstore import KVStore


@pytest.fixture
def store():
    return KVStore()


class TestBasicOps:
    def test_put_get(self, store):
        store.put("/a", "1")
        assert store.get("/a") == "1"

    def test_get_missing(self, store):
        assert store.get("/nope") is None

    def test_overwrite(self, store):
        store.put("/a", "1")
        store.put("/a", "2")
        assert store.get("/a") == "2"

    def test_delete(self, store):
        store.put("/a", "1")
        assert store.delete("/a")
        assert store.get("/a") is None
        assert not store.delete("/a")

    def test_revision_monotone(self, store):
        r1 = store.put("/a", "1")
        r2 = store.put("/b", "2")
        store.delete("/a")
        assert r2 == r1 + 1
        assert store.revision == r2 + 1

    def test_get_with_revision(self, store):
        rev = store.put("/a", "1")
        value, mod = store.get_with_revision("/a")
        assert (value, mod) == ("1", rev)
        assert store.get_with_revision("/zzz") == (None, 0)

    def test_len_and_contains(self, store):
        store.put("/a", "1")
        assert len(store) == 1
        assert "/a" in store

    def test_invalid_key(self, store):
        with pytest.raises(KVStoreError):
            store.put("", "x")


class TestCAS:
    def test_create_only(self, store):
        assert store.compare_and_swap("/a", None, "1")
        assert not store.compare_and_swap("/a", None, "2")
        assert store.get("/a") == "1"

    def test_swap_on_match(self, store):
        store.put("/a", "1")
        assert store.compare_and_swap("/a", "1", "2")
        assert store.get("/a") == "2"

    def test_swap_on_mismatch(self, store):
        store.put("/a", "1")
        assert not store.compare_and_swap("/a", "0", "2")
        assert store.get("/a") == "1"


class TestQueries:
    def test_list_prefix(self, store):
        store.put("/pods/a", "1")
        store.put("/pods/b", "2")
        store.put("/nodes/x", "3")
        assert store.list_prefix("/pods/") == {"/pods/a": "1", "/pods/b": "2"}

    def test_keys_glob(self, store):
        store.put("/pods/a", "1")
        store.put("/pods/b", "2")
        assert store.keys("/pods/*") == ["/pods/a", "/pods/b"]


class TestWatches:
    def test_watch_fires_on_put_and_delete(self, store):
        events = []
        store.watch("/pods/", events.append)
        store.put("/pods/a", "1")
        store.put("/nodes/x", "2")  # outside the prefix
        store.delete("/pods/a")
        assert [e.type for e in events] == ["put", "delete"]
        assert events[0].value == "1"
        assert events[1].value is None

    def test_event_carries_revision(self, store):
        events = []
        store.watch("/", events.append)
        rev = store.put("/a", "1")
        assert events[0].revision == rev

    def test_cancel_watch(self, store):
        events = []
        watch_id = store.watch("/", events.append)
        assert store.cancel_watch(watch_id)
        store.put("/a", "1")
        assert events == []
        assert not store.cancel_watch(watch_id)

    def test_multiple_watchers(self, store):
        a, b = [], []
        store.watch("/", a.append)
        store.watch("/pods/", b.append)
        store.put("/pods/x", "1")
        assert len(a) == 1 and len(b) == 1
