"""Tests for the OASiS-style online primal-dual allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, cpu_mem
from repro.cluster.resources import ResourceVector
from repro.schedulers import JobView, make_scheduler
from repro.schedulers.oasis import _bundle_ladder, oasis_allocation
from repro.workloads import StepTimeModel, make_job

MODELS = ("cnn-rand", "dssm", "seq2seq")


def view(job_id, model="seq2seq", mode="sync", remaining=50_000, arrival=0.0,
         requested=4, loss_efficiency=1.0):
    spec = make_job(
        model,
        mode=mode,
        job_id=job_id,
        arrival_time=arrival,
        requested_workers=requested,
        requested_ps=requested,
    )
    truth = StepTimeModel(spec.profile, mode)
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
        loss_efficiency=loss_efficiency,
    )


def used_resources(views, allocations):
    demands = {
        v.job_id: v.spec.worker_demand + v.spec.ps_demand for v in views
    }
    used = ResourceVector()
    for job_id, alloc in allocations.items():
        assert alloc.workers == alloc.ps  # 1:1 bundles
        used = used + demands[job_id] * alloc.workers
    return used


class TestBundleLadder:
    def test_doubling_plus_request_and_cap(self):
        assert _bundle_ladder(10, 6) == [1, 2, 4, 6, 8, 10]

    def test_out_of_range_request_ignored(self):
        assert _bundle_ladder(8, 0) == [1, 2, 4, 8]
        assert _bundle_ladder(8, 99) == [1, 2, 4, 8]


class TestOasisAllocation:
    def test_empty_jobs(self):
        assert oasis_allocation([], cpu_mem(100, 200)) == {}

    def test_price_range_validated(self):
        with pytest.raises(ValueError):
            oasis_allocation([view("a")], cpu_mem(100, 200), price_range=1.0)

    def test_deterministic(self):
        views = [view(f"j{i}", arrival=float(i)) for i in range(4)]
        capacity = cpu_mem(120, 240)
        assert oasis_allocation(views, capacity) == oasis_allocation(views, capacity)

    def test_earlier_arrivals_win_under_pressure(self):
        early = view("early", arrival=0.0)
        late = view("late", arrival=100.0)
        # Room for only one small bundle set.
        allocations = oasis_allocation([late, early], cpu_mem(12, 24))
        assert "early" in allocations

    def test_zero_capacity_allocates_nothing(self):
        assert oasis_allocation([view("a")], ResourceVector()) == {}

    @settings(max_examples=50, deadline=None)
    @given(
        num_jobs=st.integers(min_value=1, max_value=6),
        cpu=st.integers(min_value=5, max_value=400),
        seed=st.integers(min_value=0, max_value=2**16),
        price_range=st.floats(min_value=1.5, max_value=1e4),
    )
    def test_never_exceeds_capacity(self, num_jobs, cpu, seed, price_range):
        """The admission invariant: grants always fit inside capacity."""
        views = [
            view(
                f"j{i}",
                model=MODELS[(seed + i) % len(MODELS)],
                mode="async" if (seed + i) % 2 else "sync",
                remaining=1_000.0 * (1 + (seed * 7 + i) % 90),
                arrival=float((seed * 13 + i * 5) % 1_000),
                requested=1 + (seed + 3 * i) % 12,
            )
            for i in range(num_jobs)
        ]
        capacity = cpu_mem(cpu, 2 * cpu)
        allocations = oasis_allocation(
            views, capacity, price_range=price_range
        )
        used = used_resources(views, allocations)
        assert used.fits_within(capacity)
        assert all(a.workers >= 1 for a in allocations.values())

    def test_rising_prices_defer_late_jobs(self):
        # Plenty of jobs against a modest cluster: not everyone is admitted
        # in one round, and whoever is admitted arrived no later than the
        # best deferred job.
        views = [view(f"j{i}", arrival=float(i), requested=8) for i in range(8)]
        allocations = oasis_allocation(views, cpu_mem(100, 200))
        assert 0 < len(allocations) < len(views)


class TestOasisScheduler:
    def test_end_to_end_decision_validates(self):
        scheduler = make_scheduler("oasis")
        cluster = Cluster.homogeneous(4, cpu_mem(16, 64))
        decision = scheduler.schedule(cluster, [view("a"), view("b")])
        decision.validate()
        assert decision.scheduled_jobs

    def test_price_range_kwarg_forwarded(self):
        scheduler = make_scheduler("oasis", price_range=8.0)
        cluster = Cluster.homogeneous(4, cpu_mem(16, 64))
        decision = scheduler.schedule(cluster, [view("a")])
        decision.validate()
