"""Tests for cost-aware rescaling and background load (§7 extensions)."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import ConfigurationError, SchedulingError
from repro.core.allocation import TaskAllocation
from repro.schedulers import JobView, OptimusScheduler, make_scheduler
from repro.sim import SimConfig, simulate
from repro.sim.background import (
    MAX_BACKGROUND_FRACTION,
    clamp_fraction,
    constant_load,
    diurnal_load,
    step_load,
)
from repro.workloads import StepTimeModel, make_job, uniform_arrivals


def view(job_id, current=TaskAllocation(0, 0), rescale_cost=0.0,
         remaining=50_000, model="seq2seq"):
    spec = make_job(model, mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
        current_allocation=current,
        rescale_cost=rescale_cost,
    )


class TestRescaleHysteresis:
    @pytest.fixture
    def cluster(self):
        return Cluster.homogeneous(6, cpu_mem(16, 64))

    def test_threshold_zero_always_rescales(self, cluster):
        scheduler = OptimusScheduler(rescale_threshold=0.0)
        current = TaskAllocation(2, 2)
        decision = scheduler.schedule(
            cluster, [view("j", current=current, rescale_cost=1e9)]
        )
        # Even an absurd cost is ignored when hysteresis is off.
        assert decision.allocations["j"] != current

    def test_huge_cost_freezes_allocation(self, cluster):
        scheduler = OptimusScheduler(rescale_threshold=1.0)
        current = TaskAllocation(2, 2)
        decision = scheduler.schedule(
            cluster, [view("j", current=current, rescale_cost=1e9)]
        )
        assert decision.allocations["j"] == current

    def test_worthwhile_move_still_happens(self, cluster):
        scheduler = OptimusScheduler(rescale_threshold=1.0)
        current = TaskAllocation(1, 1)  # far below optimal for a big job
        decision = scheduler.schedule(
            cluster,
            [view("j", current=current, rescale_cost=30.0, remaining=500_000)],
        )
        # Saving hours for a 30-second checkpoint: rescale.
        assert decision.allocations["j"].total > 2

    def test_new_jobs_unaffected(self, cluster):
        scheduler = OptimusScheduler(rescale_threshold=5.0)
        decision = scheduler.schedule(
            cluster, [view("j", rescale_cost=1e9)]  # current = (0, 0)
        )
        assert decision.allocations["j"].total >= 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(SchedulingError):
            OptimusScheduler(rescale_threshold=-1.0)

    def test_hysteresis_reduces_scalings_in_simulation(self):
        jobs = uniform_arrivals(num_jobs=5, window=3000, seed=3)

        def total_scalings(threshold):
            cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
            scheduler = OptimusScheduler(rescale_threshold=threshold)
            result = simulate(
                cluster, scheduler, jobs, SimConfig(seed=7, estimator_mode="oracle")
            )
            assert result.all_finished
            return sum(r.num_scalings for r in result.jobs.values()), result

        eager, _ = total_scalings(0.0)
        lazy, lazy_result = total_scalings(3.0)
        assert lazy < eager
        assert lazy_result.total_scaling_time >= 0


class TestBackgroundLoadProfiles:
    def test_constant(self):
        profile = constant_load(0.4)
        assert profile(0) == 0.4
        assert profile(1e6) == 0.4

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            constant_load(1.5)

    def test_diurnal_cycle(self):
        profile = diurnal_load(trough=0.1, peak=0.7, period=86_400)
        assert profile(0) == pytest.approx(0.1)
        assert profile(43_200) == pytest.approx(0.7)
        assert profile(86_400) == pytest.approx(0.1)
        # Quarter-period is the midpoint.
        assert profile(21_600) == pytest.approx(0.4)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_load(trough=0.5, peak=0.2)
        with pytest.raises(ConfigurationError):
            diurnal_load(period=0)

    def test_step_schedule(self):
        profile = step_load([(100.0, 0.5), (200.0, 0.2)])
        assert profile(50) == 0.0
        assert profile(150) == 0.5
        assert profile(250) == 0.2

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            step_load([(100.0, 0.5), (100.0, 0.2)])
        with pytest.raises(ConfigurationError):
            step_load([(100.0, 2.0)])

    def test_clamp(self):
        assert clamp_fraction(-1) == 0.0
        assert clamp_fraction(2.0) == MAX_BACKGROUND_FRACTION


class TestBackgroundLoadInSimulation:
    def make_jobs(self):
        return uniform_arrivals(
            num_jobs=3, window=600, seed=5, models=["cnn-rand", "dssm"]
        )

    def run(self, load):
        cluster = Cluster.homogeneous(6, cpu_mem(16, 64))
        config = SimConfig(
            seed=7, estimator_mode="oracle", background_load=load
        )
        return simulate(cluster, make_scheduler("optimus"), self.make_jobs(), config)

    def test_load_slows_jobs(self):
        free = self.run(None)
        busy = self.run(constant_load(0.6))
        assert busy.all_finished
        assert busy.average_jct > free.average_jct

    def test_scheduler_uses_less_under_load(self):
        free = self.run(None)
        busy = self.run(constant_load(0.6))
        assert busy.mean_running_tasks() < free.mean_running_tasks()

    def test_diurnal_varies_allocations(self):
        # High background during the jobs' life vs none: task counts react.
        result = self.run(step_load([(0.0, 0.7), (1800.0, 0.0)]))
        tasks = [slot.running_tasks for slot in result.timeline]
        assert result.all_finished
        # Early (loaded) slots run fewer tasks than the post-release peak.
        if len(tasks) > 4:
            assert max(tasks[3:]) >= max(tasks[:2])
