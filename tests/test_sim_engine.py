"""Integration tests for the discrete-time simulation engine."""

import math

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import SimulationError
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, Simulation, StragglerConfig, simulate
from repro.workloads import make_job, uniform_arrivals


def small_workload(seed=1, num_jobs=4):
    return uniform_arrivals(
        num_jobs=num_jobs,
        window=1200,
        seed=seed,
        models=["cnn-rand", "kaggle-ndsb", "dssm"],
    )


def cluster():
    return Cluster.homogeneous(6, cpu_mem(16, 64))


FAST = SimConfig(seed=3, estimator_mode="oracle")


class TestBasicRuns:
    def test_all_jobs_finish(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        assert result.all_finished
        assert result.average_jct > 0
        assert math.isfinite(result.makespan)

    def test_deterministic_under_seed(self):
        a = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        b = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        assert a.average_jct == b.average_jct
        assert a.makespan == b.makespan

    def test_seed_changes_outcome(self):
        a = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        b = simulate(
            cluster(),
            make_scheduler("optimus"),
            small_workload(),
            SimConfig(seed=99, estimator_mode="oracle"),
        )
        assert a.average_jct != b.average_jct

    @pytest.mark.parametrize("name", ["optimus", "drf", "tetris", "fifo"])
    def test_every_scheduler_completes(self, name):
        result = simulate(cluster(), make_scheduler(name), small_workload(), FAST)
        assert result.all_finished, name

    def test_online_estimators_run(self):
        result = simulate(
            cluster(),
            make_scheduler("optimus"),
            small_workload(num_jobs=3),
            SimConfig(seed=3, estimator_mode="online"),
        )
        assert result.all_finished

    def test_single_job(self):
        job = make_job("cnn-rand", job_id="solo")
        result = simulate(cluster(), make_scheduler("optimus"), [job], FAST)
        assert result.jobs["solo"].finished


class TestTimeAccounting:
    def test_completion_after_arrival(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        for record in result.jobs.values():
            assert record.completion_time > record.arrival_time

    def test_jct_definition(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        record = next(iter(result.jobs.values()))
        assert record.jct == record.completion_time - record.arrival_time

    def test_fast_forward_over_idle_gap(self):
        # One job arrives very late; the sim must jump, not crawl.
        jobs = [make_job("cnn-rand", job_id="late", arrival_time=50_000.0)]
        result = simulate(cluster(), make_scheduler("optimus"), jobs, FAST)
        assert result.jobs["late"].finished
        # Timeline has no slots before the arrival.
        assert all(slot.time >= 49_800 for slot in result.timeline)

    def test_max_time_leaves_jobs_unfinished(self):
        config = SimConfig(seed=3, estimator_mode="oracle", max_time=600)
        jobs = [make_job("seq2seq", job_id="long", dataset_scale=0.5)]
        result = simulate(cluster(), make_scheduler("optimus"), jobs, config)
        assert not result.all_finished
        assert result.average_jct == math.inf or result.finished_jobs == ()
        assert result.makespan == math.inf

    def test_scaling_overhead_accounted(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        assert result.total_scaling_time > 0
        assert 0 <= result.scaling_overhead_fraction < 0.2


class TestTimeline:
    def test_slots_cover_run(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        assert result.timeline
        times = [slot.time for slot in result.timeline]
        assert times == sorted(times)

    def test_utilizations_bounded(self):
        result = simulate(cluster(), make_scheduler("drf"), small_workload(), FAST)
        for slot in result.timeline:
            assert 0.0 <= slot.worker_utilization <= 1.0
            assert 0.0 <= slot.ps_utilization <= 1.0

    def test_tasks_and_cpu_consistent(self):
        result = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        for slot in result.timeline:
            assert slot.allocated_cpu == pytest.approx(
                slot.allocated_worker_cpu + slot.allocated_ps_cpu
            )
            assert slot.running_tasks * 5 == pytest.approx(slot.allocated_cpu)


class TestOptions:
    def test_stragglers_slow_things_down(self):
        base = simulate(cluster(), make_scheduler("optimus"), small_workload(), FAST)
        noisy_cfg = SimConfig(
            seed=3,
            estimator_mode="oracle",
            stragglers=StragglerConfig(rate=0.5, handling_enabled=False),
        )
        slowed = simulate(
            cluster(), make_scheduler("optimus"), small_workload(), noisy_cfg
        )
        assert slowed.average_jct >= base.average_jct

    def test_straggler_handling_helps(self):
        def run(handling):
            cfg = SimConfig(
                seed=3,
                estimator_mode="oracle",
                stragglers=StragglerConfig(rate=0.6, handling_enabled=handling),
            )
            return simulate(
                cluster(), make_scheduler("optimus"), small_workload(seed=5), cfg
            )

        assert run(True).average_jct <= run(False).average_jct

    def test_mxnet_partitioner_slower_than_paa(self):
        def run(algorithm):
            cfg = SimConfig(seed=3, estimator_mode="oracle", partition_algorithm=algorithm)
            jobs = [make_job("resnet-50", job_id="r", dataset_scale=0.003, mode="sync")]
            return simulate(cluster(), make_scheduler("optimus"), jobs, cfg)

        assert run("mxnet").average_jct >= run("paa").average_jct

    def test_validation(self):
        with pytest.raises(SimulationError):
            SimConfig(interval=0)
        with pytest.raises(SimulationError):
            SimConfig(estimator_mode="psychic")
        with pytest.raises(SimulationError):
            SimConfig(partition_algorithm="even")
        with pytest.raises(SimulationError):
            Simulation(cluster(), make_scheduler("optimus"), [])
        job = make_job("cnn-rand", job_id="dup")
        with pytest.raises(SimulationError):
            Simulation(cluster(), make_scheduler("optimus"), [job, job])
