"""Tests for repro.obs.estimators: MAPE, bias, and drift detection."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import ConfigurationError
from repro.obs import (
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    NULL_ESTIMATOR_TELEMETRY,
    SIGNAL_REMAINING,
    SIGNAL_SPEED,
    EstimatorTelemetry,
    MetricsRegistry,
    RecordingTracer,
    SignalStats,
)
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import uniform_arrivals


class TestSignalStats:
    def test_mape_and_bias(self):
        stats = SignalStats()
        stats.add(0.2)
        stats.add(-0.1)
        assert stats.count == 2
        assert abs(stats.mape - 0.15) < 1e-12
        assert abs(stats.bias - 0.05) < 1e-12

    def test_empty_stats_are_zero(self):
        stats = SignalStats()
        assert stats.snapshot() == {"count": 0, "mape": 0.0, "bias": 0.0}


class TestSpeedResolution:
    def test_exact_relative_error(self):
        tracer = RecordingTracer()
        telem = EstimatorTelemetry(tracer=tracer)
        telem.record_speed_prediction("j1", 12.0)
        error = telem.resolve_speed("j1", 10.0, time=600.0)
        assert abs(error - 0.2) < 1e-12
        sample = tracer.of_type(EVENT_ESTIMATOR_SAMPLE)[0]
        assert sample["signal"] == SIGNAL_SPEED
        assert sample["predicted"] == 12.0
        assert sample["actual"] == 10.0
        fleet = telem.fleet_stats(SIGNAL_SPEED)
        assert fleet.count == 1
        assert abs(fleet.mape - 0.2) < 1e-12

    def test_no_pending_prediction_returns_none(self):
        telem = EstimatorTelemetry()
        assert telem.resolve_speed("j1", 10.0, time=0.0) is None

    def test_pending_speed_overwritten_not_stacked(self):
        # A descheduled interval's prediction never ran; only the latest
        # prediction resolves.
        telem = EstimatorTelemetry()
        telem.record_speed_prediction("j1", 100.0)
        telem.record_speed_prediction("j1", 10.0)
        error = telem.resolve_speed("j1", 10.0, time=0.0)
        assert error == 0.0
        assert telem.fleet_stats(SIGNAL_SPEED).count == 1

    def test_nonpositive_values_ignored(self):
        telem = EstimatorTelemetry()
        telem.record_speed_prediction("j1", 0.0)
        assert telem.resolve_speed("j1", 10.0, time=0.0) is None
        telem.record_speed_prediction("j1", 5.0)
        assert telem.resolve_speed("j1", 0.0, time=0.0) is None


class TestTotalsResolution:
    def test_whole_history_resolved_at_completion(self):
        # Fig.-6 replay: predictions made over the job's lifetime all
        # score against the one true total.
        telem = EstimatorTelemetry()
        for predicted in (80.0, 90.0, 110.0):
            telem.record_total_prediction("j1", predicted)
        resolved = telem.resolve_totals("j1", 100.0, time=1800.0)
        assert resolved == 3
        fleet = telem.fleet_stats(SIGNAL_REMAINING)
        assert fleet.count == 3
        assert abs(fleet.mape - (0.2 + 0.1 + 0.1) / 3) < 1e-12
        assert abs(fleet.bias - (-0.2 - 0.1 + 0.1) / 3) < 1e-12
        # Resolving again finds nothing pending.
        assert telem.resolve_totals("j1", 100.0, time=1800.0) == 0

    def test_per_job_stats_separate_from_fleet(self):
        telem = EstimatorTelemetry()
        telem.record_total_prediction("a", 150.0)
        telem.record_total_prediction("b", 50.0)
        telem.resolve_totals("a", 100.0, time=0.0)
        telem.resolve_totals("b", 100.0, time=0.0)
        assert abs(telem.job_stats("a", SIGNAL_REMAINING).bias - 0.5) < 1e-12
        assert abs(telem.job_stats("b", SIGNAL_REMAINING).bias + 0.5) < 1e-12
        assert telem.fleet_stats(SIGNAL_REMAINING).count == 2
        assert abs(telem.fleet_stats(SIGNAL_REMAINING).bias) < 1e-12

    def test_discard_job_drops_pending(self):
        telem = EstimatorTelemetry()
        telem.record_speed_prediction("j1", 5.0)
        telem.record_total_prediction("j1", 100.0)
        telem.discard_job("j1")
        assert telem.resolve_speed("j1", 5.0, time=0.0) is None
        assert telem.resolve_totals("j1", 100.0, time=0.0) == 0


class TestDriftDetection:
    def make(self, window=3, threshold=0.5):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        telem = EstimatorTelemetry(
            tracer=tracer,
            metrics=metrics,
            drift_window=window,
            drift_threshold=threshold,
        )
        return telem, tracer, metrics

    def feed(self, telem, errors, job_id="j1"):
        for i, rel_error in enumerate(errors):
            telem.record_speed_prediction(job_id, 10.0 * (1.0 + rel_error))
            telem.resolve_speed(job_id, 10.0, time=float(i))

    def test_fires_only_on_full_window_above_threshold(self):
        telem, tracer, metrics = self.make(window=3, threshold=0.5)
        self.feed(telem, [0.6, 0.6])  # window not yet full
        assert telem.drift_events == 0
        self.feed(telem, [0.6])  # third sample: mean 0.6 > 0.5
        assert telem.drift_events == 1
        drift = tracer.of_type(EVENT_ESTIMATOR_DRIFT)[0]
        assert drift["signal"] == SIGNAL_SPEED
        assert abs(drift["window_mape"] - 0.6) < 1e-9
        assert metrics.counter("est.refit_suggested").value == 1

    def test_window_clears_after_firing(self):
        telem, tracer, _ = self.make(window=2, threshold=0.5)
        self.feed(telem, [0.6, 0.6, 0.6])  # fires at 2, third starts anew
        assert telem.drift_events == 1
        self.feed(telem, [0.6])  # refills the window -> second firing
        assert telem.drift_events == 2

    def test_silent_below_threshold(self):
        telem, tracer, metrics = self.make(window=3, threshold=0.5)
        self.feed(telem, [0.1, 0.2, 0.1, 0.3, 0.2, 0.1])
        assert telem.drift_events == 0
        assert tracer.of_type(EVENT_ESTIMATOR_DRIFT) == []
        assert metrics.counter("est.refit_suggested").value == 0

    def test_windows_per_job_and_signal(self):
        telem, _, _ = self.make(window=2, threshold=0.5)
        self.feed(telem, [0.9], job_id="a")
        self.feed(telem, [0.9], job_id="b")
        assert telem.drift_events == 0  # neither job's window is full

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EstimatorTelemetry(drift_window=1)
        with pytest.raises(ConfigurationError):
            EstimatorTelemetry(drift_threshold=0.0)
        with pytest.raises(ConfigurationError):
            EstimatorTelemetry().fleet_stats("nope")


class TestSnapshot:
    def test_json_ready_shape(self):
        telem = EstimatorTelemetry()
        telem.record_speed_prediction("j1", 12.0)
        telem.resolve_speed("j1", 10.0, time=0.0)
        snap = telem.snapshot()
        assert snap["fleet"][SIGNAL_SPEED]["count"] == 1
        assert snap["jobs"]["j1"][SIGNAL_SPEED]["count"] == 1
        assert snap["drift_events"] == 0


class TestNullTelemetry:
    def test_falsy_and_inert(self):
        assert not NULL_ESTIMATOR_TELEMETRY
        NULL_ESTIMATOR_TELEMETRY.record_speed_prediction("j", 5.0)
        NULL_ESTIMATOR_TELEMETRY.record_total_prediction("j", 5.0)
        assert NULL_ESTIMATOR_TELEMETRY.resolve_speed("j", 5.0, 0.0) is None
        assert NULL_ESTIMATOR_TELEMETRY.resolve_totals("j", 5.0, 0.0) == 0
        assert NULL_ESTIMATOR_TELEMETRY.fleet_stats(SIGNAL_SPEED).count == 0


@pytest.mark.slow
class TestEngineDrift:
    """Acceptance: perturbing ground-truth speed mid-run fires the
    detector; the same seed unperturbed stays silent."""

    def run(self, perturbation=None):
        tracer = RecordingTracer()
        simulate(
            Cluster.homogeneous(13, cpu_mem(16, 80)),
            make_scheduler("optimus"),
            uniform_arrivals(num_jobs=9, window=12000, seed=0),
            SimConfig(seed=0, speed_perturbation=perturbation),
            tracer=tracer,
        )
        return tracer

    def test_perturbed_run_fires_drift(self):
        tracer = self.run(lambda t: 0.4 if t >= 6000 else 1.0)
        drifts = tracer.of_type(EVENT_ESTIMATOR_DRIFT)
        assert drifts, "perturbed speeds should trip the drift detector"
        assert all(d["window_mape"] > d["threshold"] for d in drifts)

    def test_unperturbed_run_is_silent(self):
        tracer = self.run(None)
        assert tracer.of_type(EVENT_ESTIMATOR_DRIFT) == []
        # ...but estimator samples still flow.
        assert tracer.of_type(EVENT_ESTIMATOR_SAMPLE)
