"""Property tests for the decision ledger (PR 10).

The ledger's core contract: in ``full`` mode, replaying a job's grant
events reconstructs its final allocation exactly. Every greedy grant
emits one ``decision`` event carrying the *post-grant* ``(workers, ps)``,
so for any job that received the 1+1 starter,

    final = (1 + #worker grants, 1 + #ps grants)

and the last grant event's ``(workers, ps)`` equals the final allocation.
Starved jobs instead get a ``capacity_exhausted`` starter denial and no
allocation. Hypothesis explores random fleets (job counts, capacities,
models, work sizes) to check this holds unconditionally.

The second half covers tolerant reads: torn JSONL lines and ``decision``
events with unknown kinds must never break ``summarize`` or ``explain``
-- a trace cut short by a crash is precisely the one an operator reads.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.resources import cpu_mem
from repro.core.allocation import AllocationRequest, allocate
from repro.obs import (
    DecisionLedger,
    MetricsRegistry,
    RecordingTracer,
    explain_trace,
    read_trace_tolerant,
    use_ledger,
)
from repro.obs.summarize import decision_summary, summarize_trace
from repro.workloads import MODEL_ZOO, StepTimeModel

FAST_MODELS = ("resnet-50", "cnn-rand", "dssm")

LEDGER_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def truth_speed(model, mode):
    truth = StepTimeModel(MODEL_ZOO[model], mode)
    return lambda p, w: truth.speed(p, w)


@st.composite
def fleets(draw):
    """A random fleet: allocation requests plus a cluster capacity."""
    num_jobs = draw(st.integers(min_value=1, max_value=6))
    requests = []
    for i in range(num_jobs):
        model = draw(st.sampled_from(FAST_MODELS))
        mode = draw(st.sampled_from(("sync", "async")))
        remaining = draw(st.floats(min_value=10.0, max_value=1e6))
        cap = draw(st.integers(min_value=1, max_value=12))
        requests.append(
            AllocationRequest(
                job_id=f"j{i}",
                remaining_work=remaining,
                speed=truth_speed(model, mode),
                worker_demand=cpu_mem(5, 10),
                ps_demand=cpu_mem(5, 10),
                max_workers=cap,
                max_ps=cap,
            )
        )
    # Anywhere from starving most jobs to room for everyone.
    cpu = draw(st.integers(min_value=10, max_value=300))
    return requests, cpu_mem(cpu, 2 * cpu)


class TestLedgerReplayReconstruction:
    @LEDGER_SETTINGS
    @given(fleet=fleets())
    def test_full_ledger_replays_to_final_allocation(self, fleet):
        requests, capacity = fleet
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        ledger = DecisionLedger(tracer, metrics, mode="full")
        with use_ledger(ledger):
            result = allocate(requests, capacity)

        grants = {}
        last = {}
        starter_denied = set()
        for event in tracer.events:
            if event.get("event") != "decision":
                continue
            job_id = event["job_id"]
            if event["kind"] == "grant":
                counts = grants.setdefault(job_id, {"worker": 0, "ps": 0})
                counts[event["task"]] += 1
                last[job_id] = (event["workers"], event["ps"])
            elif (
                event["kind"] == "deny"
                and event["reason"] == "capacity_exhausted"
                and event.get("stage") == "starter"
            ):
                starter_denied.add(job_id)

        for request in requests:
            job_id = request.job_id
            if job_id in result.starved:
                assert job_id in starter_denied
                assert job_id not in result.allocations
                assert job_id not in grants
                continue
            final = result.allocations[job_id]
            counts = grants.get(job_id, {"worker": 0, "ps": 0})
            assert (final.workers, final.ps) == (
                1 + counts["worker"],
                1 + counts["ps"],
            )
            if job_id in last:
                assert last[job_id] == (final.workers, final.ps)

        total_grants = sum(
            c["worker"] + c["ps"] for c in grants.values()
        )
        assert metrics.counter("decision.grants").value == total_grants

    @LEDGER_SETTINGS
    @given(fleet=fleets(), top_k=st.integers(min_value=1, max_value=6))
    def test_sampled_mode_conserves_grant_count(self, fleet, top_k):
        requests, capacity = fleet
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        ledger = DecisionLedger(tracer, metrics, mode="sampled", top_k=top_k)
        with use_ledger(ledger):
            allocate(requests, capacity)
        emitted = sum(
            1
            for e in tracer.events
            if e.get("event") == "decision" and e.get("kind") == "grant"
        )
        assert emitted <= top_k
        assert all(
            e.get("sampled") is True
            for e in tracer.events
            if e.get("event") == "decision" and e.get("kind") == "grant"
        )
        sampled_out = metrics.counter("decision.grants_sampled_out").value
        assert metrics.counter("decision.grants").value == emitted + sampled_out


class TestTolerantDecisionReads:
    def write_trace(self, tmp_path):
        """A trace with good lines, a torn line and unknown decision kinds."""
        tracer = RecordingTracer()
        tracer.emit("job_arrived", 0.0, job_id="j1", model="cnn-rand", mode="sync")
        tracer.emit(
            "decision", 0.0, kind="grant", job_id="j1", task="worker",
            gain=0.4, workers=2, ps=1, index=0,
        )
        tracer.emit(
            "decision", 0.0, kind="deny", job_id="j1",
            reason="converged_yield", workers=2, ps=1,
        )
        tracer.emit("allocation_decided", 0.0, job_id="j1", workers=2, ps=1)
        path = tmp_path / "torn.jsonl"
        lines = [json.dumps(e, separators=(",", ":")) for e in tracer.events]
        # A decision kind from a newer build, then a line torn mid-write.
        lines.append(json.dumps({
            "seq": 90, "time": 5.0, "event": "decision", "kind": "frobnicate",
            "job_id": "j1", "whatever": 3,
        }))
        lines.append('{"seq": 91, "time": 6.0, "event": "decision", "kin')
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_summarize_survives_torn_and_unknown_decisions(self, tmp_path):
        events, skipped = read_trace_tolerant(self.write_trace(tmp_path))
        assert skipped == 1  # only the torn line drops
        text = summarize_trace(events, skipped_lines=skipped)
        assert "skipped 1 corrupt/truncated line(s)" in text
        assert "decision ledger:" in text
        summary = decision_summary(events)
        assert summary["grants"] == {"worker": 1}
        assert summary["denials"] == {"converged_yield": 1}

    def test_explain_survives_torn_and_unknown_decisions(self, tmp_path):
        events, _ = read_trace_tolerant(self.write_trace(tmp_path))
        text = explain_trace(events, "j1")
        assert "granted +1 worker" in text
        assert "j1" in text
        # The unknown kind renders as *something* without raising.
        assert "frobnicate" in text or "decision" in text

    def test_explain_unknown_job_lists_known_jobs(self, tmp_path):
        events, _ = read_trace_tolerant(self.write_trace(tmp_path))
        text = explain_trace(events, "nope")
        assert "no events for job" in text
        assert "j1" in text
