"""Tests for the Eqn-2 step-time ground truth, including the Fig-4 shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.workloads import MODEL_ZOO, StepTimeModel, straggler_step_time
from repro.workloads.speed import MODE_ASYNC, MODE_SYNC, validate_mode


@pytest.fixture
def sync_model():
    return StepTimeModel(MODEL_ZOO["resnet-50"], MODE_SYNC)


@pytest.fixture
def async_model():
    return StepTimeModel(MODEL_ZOO["resnet-50"], MODE_ASYNC)


class TestBasics:
    def test_validate_mode(self):
        assert validate_mode("sync") == "sync"
        with pytest.raises(ConfigurationError):
            validate_mode("semisync")

    def test_invalid_tasks(self, sync_model):
        with pytest.raises(ConfigurationError):
            sync_model.speed(0, 1)
        with pytest.raises(ConfigurationError):
            sync_model.speed(1, 0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            StepTimeModel(MODEL_ZOO["resnet-50"], MODE_SYNC, bandwidth=0)

    def test_mini_batch_sync_divides_global(self, sync_model):
        assert sync_model.mini_batch(4) == pytest.approx(256 / 4)

    def test_mini_batch_async_fixed(self, async_model):
        assert async_model.mini_batch(4) == 32
        assert async_model.mini_batch(16) == 32

    def test_concurrent_pushers(self, sync_model, async_model):
        assert sync_model.concurrent_pushers(8) == 8
        assert async_model.concurrent_pushers(8) == pytest.approx(4.0)

    def test_breakdown_sums_to_total(self, sync_model):
        b = sync_model.breakdown(4, 8)
        assert b.total == pytest.approx(b.compute + b.transfer + b.update + b.overhead)

    def test_imbalance_must_be_at_least_one(self, sync_model):
        with pytest.raises(ConfigurationError):
            sync_model.breakdown(4, 8, imbalance=0.5)


class TestEqn2Structure:
    def test_more_ps_less_transfer(self, sync_model):
        few = sync_model.breakdown(2, 8).transfer
        many = sync_model.breakdown(8, 8).transfer
        assert many < few

    def test_more_workers_more_transfer_sync(self, sync_model):
        assert sync_model.breakdown(8, 16).transfer > sync_model.breakdown(8, 4).transfer

    def test_overhead_linear_in_tasks(self, sync_model):
        prof = MODEL_ZOO["resnet-50"]
        base = sync_model.breakdown(4, 8).overhead
        plus_ps = sync_model.breakdown(5, 8).overhead
        assert plus_ps - base == pytest.approx(prof.overhead_ps)

    def test_imbalance_slows_step(self, sync_model):
        balanced = sync_model.step_time(8, 8, imbalance=1.0)
        imbalanced = sync_model.step_time(8, 8, imbalance=1.5)
        assert imbalanced > balanced

    def test_sync_compute_shrinks_with_workers_until_floor(self, sync_model):
        c2 = sync_model.breakdown(4, 2).compute
        c8 = sync_model.breakdown(4, 8).compute
        assert c8 < c2
        # Past the under-utilisation floor compute stops shrinking.
        floor_w = int(256 / (32 * 0.75)) + 1
        c_floor = sync_model.breakdown(4, floor_w).compute
        c_more = sync_model.breakdown(4, floor_w + 8).compute
        assert c_more == pytest.approx(c_floor)


class TestFig4Shapes:
    def test_fig4a_interior_optimum(self, sync_model):
        """20 containers split between ps and workers: peak near w=8 (Fig 4a)."""
        speeds = {w: sync_model.speed(20 - w, w) for w in range(1, 20)}
        best = max(speeds, key=speeds.get)
        assert 5 <= best <= 11
        # Both extremes are clearly worse than the peak.
        assert speeds[1] < 0.7 * speeds[best]
        assert speeds[19] < 0.7 * speeds[best]

    def test_fig4b_nonmonotone_in_workers(self, sync_model):
        """1:1 ps:workers: speed rises, peaks, then declines (Fig 4b)."""
        speeds = {w: sync_model.speed(w, w) for w in range(1, 21)}
        best = max(speeds, key=speeds.get)
        assert 6 <= best <= 16
        assert speeds[20] < speeds[best]

    def test_async_speed_increases_sublinearly(self, async_model):
        s2 = async_model.speed(2, 2)
        s8 = async_model.speed(8, 8)
        s16 = async_model.speed(16, 16)
        assert s8 > s2 and s16 > s8
        # Doubling the tasks from 8 to 16 must yield less than 2x speed.
        assert s16 < 2 * s8

    def test_examples_per_second(self, sync_model, async_model):
        assert sync_model.examples_per_second(4, 8) == pytest.approx(
            sync_model.speed(4, 8) * 256
        )
        assert async_model.examples_per_second(4, 8) == pytest.approx(
            async_model.speed(4, 8) * 32
        )


class TestPlacementAwareTransfer:
    def test_full_colocation_on_one_server_is_free(self, sync_model):
        layout = {"s0": (8, 4)}
        assert sync_model.breakdown(4, 8, placement=layout).transfer == 0.0

    def test_spread_worse_than_packed(self, sync_model):
        packed = {"s0": (2, 1), "s1": (2, 1)}
        spread = {f"s{i}": (1, 0) for i in range(4)}
        spread["s4"] = (0, 1)
        spread["s5"] = (0, 1)
        t_packed = sync_model.step_time(2, 4, placement=packed)
        t_spread = sync_model.step_time(2, 4, placement=spread)
        assert t_packed < t_spread

    def test_fig10_accounting(self):
        """The worked example of Fig. 10: layout (c) beats (a) and (b)."""
        profile = MODEL_ZOO["resnet-50"]
        model = StepTimeModel(profile, MODE_SYNC)
        # 2 ps + 4 workers over 3 servers, as drawn in the paper.
        a = {"s1": (0, 2), "s2": (2, 0), "s3": (2, 0)}
        b = {"s1": (1, 1), "s2": (2, 1), "s3": (1, 0)}
        c = {"s1": (2, 1), "s2": (2, 1)}
        ta = model.breakdown(2, 4, placement=a).transfer
        tb = model.breakdown(2, 4, placement=b).transfer
        tc = model.breakdown(2, 4, placement=c).transfer
        assert tc < ta
        assert tc < tb

    def test_layout_totals_validated(self, sync_model):
        with pytest.raises(ConfigurationError):
            sync_model.breakdown(4, 8, placement={"s0": (7, 4)})

    def test_bandwidth_shares_slow_transfer(self, sync_model):
        layout = {"s0": (4, 2), "s1": (4, 2)}
        fast = sync_model.step_time(4, 8, placement=layout)
        shared = sync_model.step_time(
            4, 8, placement=layout, bandwidths={"s0": 20e6, "s1": 20e6}
        )
        assert shared > fast


class TestStragglers:
    def test_sync_pays_full_slowdown(self, sync_model):
        base = sync_model.step_time(4, 8)
        slowed = straggler_step_time(sync_model, 4, 8, slowdown=3.0)
        compute = sync_model.breakdown(4, 8).compute
        assert slowed == pytest.approx(base + 2.0 * compute)

    def test_async_unaffected_step_time(self, async_model):
        base = async_model.step_time(4, 8)
        assert straggler_step_time(async_model, 4, 8, slowdown=3.0) == pytest.approx(base)

    def test_slowdown_below_one_rejected(self, sync_model):
        with pytest.raises(ConfigurationError):
            straggler_step_time(sync_model, 4, 8, slowdown=0.5)


class TestMeasuredSpeed:
    def test_reproducible(self, sync_model):
        assert sync_model.measured_speed(4, 8, seed=1) == sync_model.measured_speed(
            4, 8, seed=1
        )

    def test_zero_noise_is_exact(self, sync_model):
        assert sync_model.measured_speed(4, 8, seed=1, noise_std=0) == pytest.approx(
            sync_model.speed(4, 8)
        )

    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(1, 20), w=st.integers(1, 20))
    def test_speed_positive_everywhere(self, p, w):
        for name in ("resnet-50", "cnn-rand", "seq2seq"):
            for mode in (MODE_SYNC, MODE_ASYNC):
                model = StepTimeModel(MODEL_ZOO[name], mode)
                assert model.speed(p, w) > 0
