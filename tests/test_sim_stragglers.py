"""Tests for straggler injection and handling (§5.2)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rand import RandomSource
from repro.sim.stragglers import (
    StragglerConfig,
    StragglerEpisode,
    StragglerInjector,
    degraded_speed,
    effective_interval_speed,
)
from repro.workloads import MODEL_ZOO, StepTimeModel


@pytest.fixture
def sync_model():
    return StepTimeModel(MODEL_ZOO["resnet-50"], "sync")


@pytest.fixture
def async_model():
    return StepTimeModel(MODEL_ZOO["resnet-50"], "async")


class TestConfig:
    def test_defaults_disabled(self):
        assert not StragglerConfig().enabled

    def test_episode_duration(self):
        config = StragglerConfig(rate=0.1, detection_time=40, replacement_time=20)
        assert config.episode_duration == 60

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StragglerConfig(rate=1.5)
        with pytest.raises(ConfigurationError):
            StragglerConfig(slowdown_range=(0.5, 2.0))
        with pytest.raises(ConfigurationError):
            StragglerConfig(slowdown_range=(3.0, 2.0))
        with pytest.raises(ConfigurationError):
            StragglerConfig(detection_time=-1)


class TestInjector:
    def test_disabled_yields_nothing(self):
        injector = StragglerInjector(StragglerConfig(), RandomSource(1))
        assert injector.sample(10, 600) == []

    def test_rate_one_hits_every_worker(self):
        injector = StragglerInjector(StragglerConfig(rate=1.0), RandomSource(1))
        episodes = injector.sample(5, 600)
        assert len(episodes) == 5
        assert {e.worker_index for e in episodes} == set(range(5))

    def test_handling_bounds_duration(self):
        config = StragglerConfig(
            rate=1.0, detection_time=40, replacement_time=20, handling_enabled=True
        )
        injector = StragglerInjector(config, RandomSource(1))
        episodes = injector.sample(3, 600)
        assert all(e.duration == 60 for e in episodes)

    def test_no_handling_lasts_interval(self):
        config = StragglerConfig(rate=1.0, handling_enabled=False)
        injector = StragglerInjector(config, RandomSource(1))
        episodes = injector.sample(3, 600)
        assert all(e.duration == 600 for e in episodes)

    def test_slowdowns_in_range(self):
        config = StragglerConfig(rate=1.0, slowdown_range=(2.0, 4.0))
        injector = StragglerInjector(config, RandomSource(1))
        episodes = injector.sample(50, 600)
        assert all(2.0 <= e.slowdown <= 4.0 for e in episodes)

    def test_reproducible(self):
        config = StragglerConfig(rate=0.3)
        a = StragglerInjector(config, RandomSource(9)).sample(20, 600)
        b = StragglerInjector(config, RandomSource(9)).sample(20, 600)
        assert a == b


class TestDegradedSpeed:
    def test_no_episodes_full_speed(self, sync_model):
        assert degraded_speed(sync_model, 4, 8, []) == sync_model.speed(4, 8)

    def test_sync_pays_worst_straggler(self, sync_model):
        episodes = [
            StragglerEpisode(0, slowdown=2.0, duration=60),
            StragglerEpisode(1, slowdown=3.5, duration=60),
        ]
        slow = degraded_speed(sync_model, 4, 8, episodes)
        assert slow < sync_model.speed(4, 8)
        # Equivalent to the single worst slowdown.
        worst_only = degraded_speed(
            sync_model, 4, 8, [StragglerEpisode(1, 3.5, 60)]
        )
        assert slow == pytest.approx(worst_only)

    def test_async_loses_proportional_throughput(self, async_model):
        episodes = [StragglerEpisode(0, slowdown=2.0, duration=60)]
        base = async_model.speed(4, 8)
        slow = degraded_speed(async_model, 4, 8, episodes)
        # One of 8 workers at half speed: lose 1/16 of throughput.
        assert slow == pytest.approx(base * (7.5 / 8))


class TestEffectiveIntervalSpeed:
    def test_no_episodes(self, sync_model):
        full = sync_model.speed(4, 8)
        assert effective_interval_speed(sync_model, 4, 8, [], 600) == full

    def test_weighted_average(self, sync_model):
        episodes = [StragglerEpisode(0, slowdown=3.0, duration=100)]
        full = sync_model.speed(4, 8)
        slow = degraded_speed(sync_model, 4, 8, episodes)
        expected = (slow * 100 + full * 500) / 600
        assert effective_interval_speed(
            sync_model, 4, 8, episodes, 600
        ) == pytest.approx(expected)

    def test_episode_clamped_to_interval(self, sync_model):
        episodes = [StragglerEpisode(0, slowdown=3.0, duration=10_000)]
        slow = degraded_speed(sync_model, 4, 8, episodes)
        assert effective_interval_speed(
            sync_model, 4, 8, episodes, 600
        ) == pytest.approx(slow)

    def test_zero_run_time(self, sync_model):
        assert effective_interval_speed(sync_model, 4, 8, [], 0) == 0.0

    def test_handling_beats_no_handling(self, sync_model):
        """Replacing stragglers quickly must out-perform leaving them."""
        short = [StragglerEpisode(0, 3.0, 90)]
        long = [StragglerEpisode(0, 3.0, 600)]
        handled = effective_interval_speed(sync_model, 4, 8, short, 600)
        unhandled = effective_interval_speed(sync_model, 4, 8, long, 600)
        assert handled > unhandled
