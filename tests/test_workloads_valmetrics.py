"""Tests for the validation-metrics stream (§2.1 / Fig. 1)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import MODEL_ZOO
from repro.workloads.valmetrics import (
    EpochMetrics,
    ValidationEmitter,
    no_overfitting,
)


@pytest.fixture
def emitter():
    return ValidationEmitter(MODEL_ZOO["resnext-110"].loss, seed=2)


class TestTrueMetrics:
    def test_initial_state(self, emitter):
        start = emitter.true_metrics(0)
        assert start.train_loss == pytest.approx(emitter.initial_loss)
        assert start.train_accuracy == pytest.approx(0.0)
        assert start.validation_accuracy == pytest.approx(0.0)

    def test_losses_decrease_accuracy_increases(self, emitter):
        early = emitter.true_metrics(2)
        late = emitter.true_metrics(40)
        assert late.train_loss < early.train_loss
        assert late.validation_loss < early.validation_loss
        assert late.train_accuracy > early.train_accuracy
        assert late.validation_accuracy > early.validation_accuracy

    def test_validation_tracks_training_with_gap(self, emitter):
        for epoch in (5, 20, 50):
            metrics = emitter.true_metrics(epoch)
            assert metrics.validation_loss >= metrics.train_loss
            assert metrics.validation_accuracy <= metrics.train_accuracy
        # The gap is bounded: no divergence (no overfitting, §2.1).
        late = emitter.true_metrics(50)
        assert late.validation_loss <= late.train_loss * 1.06

    def test_accuracy_bounded_by_max(self, emitter):
        assert emitter.true_metrics(500).train_accuracy < emitter.max_accuracy

    def test_negative_epoch_rejected(self, emitter):
        with pytest.raises(ConfigurationError):
            emitter.true_metrics(-1)


class TestObserve:
    def test_noise_reproducible(self):
        curve = MODEL_ZOO["resnext-110"].loss
        a = ValidationEmitter(curve, seed=7).observe(10)
        b = ValidationEmitter(curve, seed=7).observe(10)
        assert a == b

    def test_accuracy_never_exceeds_one(self):
        emitter = ValidationEmitter(
            MODEL_ZOO["resnext-110"].loss, max_accuracy=1.0, noise_std=0.2, seed=1
        )
        for epoch in range(0, 60, 5):
            metrics = emitter.observe(epoch)
            assert metrics.train_accuracy <= 1.0
            assert metrics.validation_accuracy <= 1.0

    def test_zero_noise_is_exact(self, emitter):
        exact = ValidationEmitter(
            MODEL_ZOO["resnext-110"].loss, noise_std=0.0, seed=2
        )
        assert exact.observe(10) == exact.true_metrics(10)

    def test_history_length(self, emitter):
        assert len(emitter.history(25)) == 26
        with pytest.raises(ConfigurationError):
            emitter.history(-1)


class TestNoOverfitting:
    def test_production_curves_do_not_overfit(self):
        for name, profile in MODEL_ZOO.items():
            emitter = ValidationEmitter(profile.loss, noise_std=0.0, seed=1)
            epochs = profile.loss.epochs_to_converge(0.002)
            assert no_overfitting(emitter.history(epochs)), name

    def test_detects_divergence(self):
        good = EpochMetrics(0, 5.0, 5.2, 0.1, 0.09)
        bad = EpochMetrics(1, 2.0, 6.0, 0.8, 0.5)
        assert not no_overfitting([good, bad])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            no_overfitting([])


class TestValidation:
    def test_constructor_guards(self):
        curve = MODEL_ZOO["resnext-110"].loss
        with pytest.raises(ConfigurationError):
            ValidationEmitter(curve, initial_loss=0)
        with pytest.raises(ConfigurationError):
            ValidationEmitter(curve, max_accuracy=0)
        with pytest.raises(ConfigurationError):
            ValidationEmitter(curve, generalisation_gap=1.0)
        with pytest.raises(ConfigurationError):
            ValidationEmitter(curve, sharpness=0)
        with pytest.raises(ConfigurationError):
            ValidationEmitter(curve, noise_std=-1)
