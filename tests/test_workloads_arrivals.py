"""Tests for the arrival processes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import google_trace_arrivals, poisson_arrivals, uniform_arrivals
from repro.workloads.arrivals import DATASET_DOWNSCALE, STATIC_REQUESTS, THRESHOLD_RANGE


class TestUniform:
    def test_count_and_window(self):
        jobs = uniform_arrivals(num_jobs=20, window=1000, seed=1)
        assert len(jobs) == 20
        assert all(0 <= j.arrival_time <= 1000 for j in jobs)

    def test_sorted_by_arrival(self):
        jobs = uniform_arrivals(num_jobs=10, seed=1)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_reproducible(self):
        a = uniform_arrivals(num_jobs=5, seed=4)
        b = uniform_arrivals(num_jobs=5, seed=4)
        assert [(j.job_id, j.arrival_time) for j in a] == [
            (j.job_id, j.arrival_time) for j in b
        ]

    def test_seed_changes_jobs(self):
        a = uniform_arrivals(num_jobs=5, seed=4)
        b = uniform_arrivals(num_jobs=5, seed=5)
        assert [j.arrival_time for j in a] != [j.arrival_time for j in b]

    def test_mode_pinning(self):
        jobs = uniform_arrivals(num_jobs=10, seed=1, mode="async")
        assert all(j.mode == "async" for j in jobs)

    def test_mixed_modes_by_default(self):
        jobs = uniform_arrivals(num_jobs=40, seed=1)
        modes = {j.mode for j in jobs}
        assert modes == {"sync", "async"}

    def test_model_filter(self):
        jobs = uniform_arrivals(num_jobs=10, seed=1, models=["cnn-rand"])
        assert all(j.model_name == "cnn-rand" for j in jobs)

    def test_thresholds_in_range(self):
        jobs = uniform_arrivals(num_jobs=30, seed=1)
        lo, hi = THRESHOLD_RANGE
        assert all(lo <= j.threshold <= hi for j in jobs)

    def test_downscale_applied(self):
        jobs = uniform_arrivals(num_jobs=50, seed=2)
        for job in jobs:
            expected = DATASET_DOWNSCALE.get(job.model_name, 1.0)
            assert job.dataset_scale == expected

    def test_static_requests_applied(self):
        jobs = uniform_arrivals(num_jobs=50, seed=2)
        for job in jobs:
            assert job.requested_workers == STATIC_REQUESTS[job.model_name]
            assert job.requested_ps == job.requested_workers

    def test_unique_ids(self):
        jobs = uniform_arrivals(num_jobs=30, seed=3)
        assert len({j.job_id for j in jobs}) == 30

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            uniform_arrivals(num_jobs=0)
        with pytest.raises(ConfigurationError):
            uniform_arrivals(num_jobs=5, window=-1)


class TestPoisson:
    def test_rate_controls_count(self):
        sparse = poisson_arrivals(rate_per_interval=1, duration=60_000, seed=1)
        dense = poisson_arrivals(rate_per_interval=6, duration=60_000, seed=1)
        assert len(dense) > len(sparse)

    def test_mean_rate_roughly_right(self):
        jobs = poisson_arrivals(
            rate_per_interval=3, interval=600, duration=120_000, seed=7
        )
        expected = 3 * 120_000 / 600
        assert 0.7 * expected <= len(jobs) <= 1.3 * expected

    def test_at_least_one_job(self):
        jobs = poisson_arrivals(rate_per_interval=0.0001, duration=600, seed=1)
        assert len(jobs) >= 1

    def test_within_duration(self):
        jobs = poisson_arrivals(rate_per_interval=3, duration=5000, seed=2)
        assert all(0 <= j.arrival_time < 5000 for j in jobs)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(rate_per_interval=0)


class TestGoogleTrace:
    def test_count(self):
        jobs = google_trace_arrivals(num_jobs=25, seed=1)
        assert len(jobs) == 25

    def test_burstier_than_uniform(self):
        """Spiky arrivals concentrate more jobs into the busiest window."""
        duration = 25_200.0
        spiky = google_trace_arrivals(
            num_jobs=60, duration=duration, seed=3, spike_fraction=0.8
        )
        flat = uniform_arrivals(num_jobs=60, window=duration, seed=3)

        def max_bucket(jobs, bucket=600.0):
            counts = {}
            for job in jobs:
                counts[int(job.arrival_time // bucket)] = (
                    counts.get(int(job.arrival_time // bucket), 0) + 1
                )
            return max(counts.values())

        assert max_bucket(spiky) > max_bucket(flat)

    def test_all_within_duration(self):
        jobs = google_trace_arrivals(num_jobs=30, duration=10_000, seed=2)
        assert all(0 <= j.arrival_time <= 10_000 for j in jobs)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            google_trace_arrivals(num_jobs=0)
        with pytest.raises(ConfigurationError):
            google_trace_arrivals(num_jobs=5, spike_fraction=1.5)
