"""Tests for parameter-block partitioning (§5.3): PAA vs MXNet default."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.ps.blocks import Assignment, ParameterBlock, ServerLoad, blocks_from_sizes
from repro.ps.partition import mxnet_partition, paa_partition, partition
from repro.workloads import MODEL_ZOO


@pytest.fixture
def resnet_blocks():
    return blocks_from_sizes(MODEL_ZOO["resnet-50"].parameter_blocks())


class TestBlocks:
    def test_blocks_from_sizes_names(self):
        blocks = blocks_from_sizes([10.0, 20.0])
        assert blocks[0].name == "block-000"
        assert blocks[1].size == 20.0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterBlock("x", 0)

    def test_server_load_metrics(self):
        load = ServerLoad(0)
        load.add("a", 10.0)
        load.add("b", 5.0)
        assert load.assigned_size == 15.0
        assert load.num_requests == 2

    def test_assignment_metrics(self):
        s0, s1 = ServerLoad(0), ServerLoad(1)
        s0.add("a", 10.0)
        s1.add("b", 4.0)
        s1.add("c", 2.0)
        assignment = Assignment(servers=[s0, s1], algorithm="test")
        assert assignment.total_size == 16.0
        assert assignment.total_requests == 3
        assert assignment.size_difference == 4.0
        assert assignment.request_difference == 1
        assert assignment.max_share == pytest.approx(10 / 16)
        assert assignment.imbalance_factor == pytest.approx(2 * 10 / 16)


class TestMXNetPartition:
    def test_conserves_parameters(self, resnet_blocks):
        assignment = mxnet_partition(resnet_blocks, 10, seed=1)
        assert assignment.total_size == pytest.approx(25e6, rel=1e-6)

    def test_large_blocks_sliced_to_all_servers(self):
        blocks = [ParameterBlock("big", 5e6), ParameterBlock("small", 100.0)]
        assignment = mxnet_partition(blocks, 4, seed=1)
        slices = [
            name for server in assignment.servers for name, _ in server.pieces
            if name == "big"
        ]
        assert len(slices) == 4  # the big block appears on every server

    def test_small_blocks_random_single_server(self):
        blocks = [ParameterBlock(f"b{i}", 100.0) for i in range(20)]
        assignment = mxnet_partition(blocks, 4, seed=1)
        assert assignment.total_requests == 20  # no slicing below threshold

    def test_threshold_parameter(self):
        blocks = [ParameterBlock("b", 500.0)]
        sliced = mxnet_partition(blocks, 4, threshold=100.0, seed=1)
        assert sliced.total_requests == 4

    def test_reproducible_under_seed(self, resnet_blocks):
        a = mxnet_partition(resnet_blocks, 8, seed=5)
        b = mxnet_partition(resnet_blocks, 8, seed=5)
        assert a.summary() == b.summary()

    def test_validation(self, resnet_blocks):
        with pytest.raises(ConfigurationError):
            mxnet_partition(resnet_blocks, 0)
        with pytest.raises(ConfigurationError):
            mxnet_partition([], 4)
        with pytest.raises(ConfigurationError):
            mxnet_partition(resnet_blocks, 4, threshold=0)


class TestPAAPartition:
    def test_conserves_parameters(self, resnet_blocks):
        assignment = paa_partition(resnet_blocks, 10)
        assert assignment.total_size == pytest.approx(25e6, rel=1e-6)

    def test_deterministic(self, resnet_blocks):
        a = paa_partition(resnet_blocks, 10)
        b = paa_partition(resnet_blocks, 10)
        assert a.summary() == b.summary()

    def test_table3_shape(self, resnet_blocks):
        """Table 3: PAA yields tiny size diff, request diff ~1, near-minimal
        requests; MXNet's default is far worse on all three."""
        mx = mxnet_partition(resnet_blocks, 10, seed=1)
        pa = paa_partition(resnet_blocks, 10)
        assert pa.size_difference < 0.3e6  # paper: 0.1M
        assert pa.request_difference <= 2  # paper: 1
        assert pa.total_requests <= len(resnet_blocks) + 3  # paper: no splits
        assert mx.size_difference > 5 * pa.size_difference
        assert mx.request_difference > pa.request_difference
        assert mx.total_requests > pa.total_requests

    def test_imbalance_factor_near_one(self, resnet_blocks):
        for p in (2, 5, 10, 18):
            assignment = paa_partition(resnet_blocks, p)
            assert 1.0 <= assignment.imbalance_factor < 1.15, p

    def test_mxnet_imbalance_grows_with_servers(self, resnet_blocks):
        few = mxnet_partition(resnet_blocks, 4, seed=1).imbalance_factor
        many = mxnet_partition(resnet_blocks, 18, seed=1).imbalance_factor
        assert many > few

    def test_single_server_trivial(self, resnet_blocks):
        assignment = paa_partition(resnet_blocks, 1)
        assert assignment.imbalance_factor == pytest.approx(1.0)
        assert assignment.request_difference == 0

    def test_oversized_block_sliced(self):
        blocks = [ParameterBlock("huge", 100.0), ParameterBlock("rest", 10.0)]
        assignment = paa_partition(blocks, 4)
        # avg = 27.5, so "huge" is sliced into 4 pieces.
        assert assignment.total_requests >= 5
        assert assignment.total_size == pytest.approx(110.0)

    def test_tiny_blocks_balance_requests(self):
        blocks = [ParameterBlock("big0", 1000.0), ParameterBlock("big1", 990.0)]
        blocks += [ParameterBlock(f"tiny{i}", 0.5) for i in range(20)]
        assignment = paa_partition(blocks, 2)
        assert assignment.request_difference <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paa_partition([ParameterBlock("a", 1.0)], 2, tiny_fraction=0.0)


class TestDispatch:
    def test_partition_by_name(self, resnet_blocks):
        assert partition(resnet_blocks, 4, "paa").algorithm == "paa"
        assert partition(resnet_blocks, 4, "mxnet", seed=1).algorithm == "mxnet"

    def test_unknown_algorithm(self, resnet_blocks):
        with pytest.raises(ConfigurationError):
            partition(resnet_blocks, 4, "round-robin")


sizes_strategy = st.lists(
    st.floats(min_value=1.0, max_value=5e6, allow_nan=False),
    min_size=1,
    max_size=80,
)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(sizes=sizes_strategy, num_servers=st.integers(1, 12))
    def test_paa_conserves_and_bounds_imbalance(self, sizes, num_servers):
        blocks = blocks_from_sizes(sizes)
        assignment = paa_partition(blocks, num_servers)
        assert assignment.total_size == pytest.approx(sum(sizes), rel=1e-9)
        assert assignment.imbalance_factor >= 1.0 - 1e-9
        # The busiest server holds at most one extra max-block beyond avg.
        avg = sum(sizes) / num_servers
        busiest = max(s.assigned_size for s in assignment.servers)
        assert busiest <= avg + max(sizes) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(sizes=sizes_strategy, num_servers=st.integers(1, 12), seed=st.integers(0, 99))
    def test_mxnet_conserves(self, sizes, num_servers, seed):
        blocks = blocks_from_sizes(sizes)
        assignment = mxnet_partition(blocks, num_servers, seed=seed)
        assert assignment.total_size == pytest.approx(sum(sizes), rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(sizes=sizes_strategy, num_servers=st.integers(2, 12))
    def test_paa_no_worse_than_mxnet_on_requests(self, sizes, num_servers):
        # PAA slices blocks above avg = total/p; MXNet slices blocks above
        # its fixed threshold. The comparison is only meaningful when PAA
        # has no forced slicing of its own.
        if max(sizes) > sum(sizes) / num_servers:
            return
        blocks = blocks_from_sizes(sizes)
        pa = paa_partition(blocks, num_servers)
        mx = mxnet_partition(blocks, num_servers, seed=0)
        assert pa.total_requests <= mx.total_requests
