"""Tests for repro.obs.registry: metric math, null behaviour, profiler."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    NULL_PROFILER,
    NULL_REGISTRY,
    MetricsRegistry,
    PhaseProfiler,
    active_registry,
    install_registry,
    use_registry,
)


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # Same name resolves to the same instrument.
        registry.counter("jobs").inc()
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("jobs").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("active")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_basic_statistics(self):
        hist = MetricsRegistry().histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(555.5)
        assert hist.mean == pytest.approx(555.5 / 4)
        assert hist.min == 0.5
        assert hist.max == 500.0

    def test_bucket_counts(self):
        hist = MetricsRegistry().histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 500.0):
            hist.observe(value)
        snap = hist.snapshot()
        # Buckets are cumulative-style per-bound counts plus overflow.
        by_le = {bucket["le"]: bucket["count"] for bucket in snap["buckets"]}
        assert by_le[1.0] == 2
        assert by_le[10.0] == 1
        assert by_le["inf"] == 1

    def test_quantile_interpolates_from_buckets(self):
        hist = MetricsRegistry().histogram("lat", bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 6.0):
            hist.observe(value)
        # The median lives in the (1, 2] bucket.
        assert 1.0 <= hist.quantile(0.5) <= 2.0
        assert hist.quantile(1.0) >= hist.quantile(0.0)

    def test_empty_histogram_is_sane(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0


class TestRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("b.level").set(7)
        registry.histogram("c.time").observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["a.count"] == 2
        assert snap["gauges"]["b.level"] == 7
        assert snap["histograms"]["c.time"]["count"] == 1

    def test_timer_observes_elapsed_time(self):
        registry = MetricsRegistry()
        with registry.timer("phase.test"):
            pass
        hist = registry.histogram("phase.test")
        assert hist.count == 1
        assert hist.max >= 0.0

    def test_bad_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("x", bounds=())
        with pytest.raises(ConfigurationError):
            registry.histogram("y", bounds=(2.0, 1.0))


class TestNullRegistry:
    def test_falsy_and_inert(self):
        assert not NULL_REGISTRY
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.gauge("b").set(1)
        NULL_REGISTRY.histogram("c").observe(2.0)
        with NULL_REGISTRY.timer("d"):
            pass
        assert NULL_REGISTRY.snapshot() == {}


class TestActiveRegistry:
    def test_default_is_null(self):
        assert active_registry() is NULL_REGISTRY or not active_registry()

    def test_use_registry_scopes_installation(self):
        registry = MetricsRegistry()
        before = active_registry()
        with use_registry(registry):
            assert active_registry() is registry
            active_registry().counter("scoped").inc()
        assert active_registry() is before
        assert registry.counter("scoped").value == 1

    def test_install_registry_none_restores_null(self):
        registry = MetricsRegistry()
        install_registry(registry)
        try:
            assert active_registry() is registry
        finally:
            install_registry(None)
        assert not active_registry()

    def test_use_registry_with_null_disables_recording(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with use_registry(NULL_REGISTRY):
                active_registry().counter("inner").inc()
            active_registry().counter("outer").inc()
        assert registry.snapshot()["counters"] == {"outer": 1}


class TestPhaseProfiler:
    def test_interval_timings_reset_per_interval(self):
        profiler = PhaseProfiler(MetricsRegistry())
        profiler.begin_interval()
        with profiler.phase("fit"):
            pass
        with profiler.phase("schedule"):
            pass
        first = profiler.interval_timings()
        assert set(first) == {"fit", "schedule"}
        profiler.begin_interval()
        assert profiler.interval_timings() == {}

    def test_summary_accumulates_across_intervals(self):
        profiler = PhaseProfiler(MetricsRegistry())
        for _ in range(3):
            profiler.begin_interval()
            with profiler.phase("fit"):
                pass
        summary = profiler.summary()
        assert summary["fit"]["count"] == 3
        assert summary["fit"]["total"] >= 0.0
        assert summary["fit"]["max"] <= summary["fit"]["total"] + 1e-12

    def test_phases_feed_registry_histograms(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry)
        profiler.begin_interval()
        with profiler.phase("place"):
            pass
        assert registry.histogram("phase.place").count == 1

    def test_null_profiler_is_inert(self):
        assert not NULL_PROFILER
        NULL_PROFILER.begin_interval()
        with NULL_PROFILER.phase("anything"):
            pass
        assert NULL_PROFILER.interval_timings() == {}
        assert NULL_PROFILER.summary() == {}
