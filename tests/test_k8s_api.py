"""Tests for the miniature API server."""

import pytest

from repro.cluster.resources import cpu_mem
from repro.common.errors import KVStoreError
from repro.k8s import APIServer, PodSpec, pod_name
from repro.k8s.objects import PHASE_PENDING, PHASE_RUNNING


@pytest.fixture
def api():
    server = APIServer()
    server.register_node("n0", cpu_mem(16, 64))
    server.register_node("n1", cpu_mem(16, 64))
    return server


def pod(job="j1", role="worker", index=0):
    return PodSpec(
        name=pod_name(job, role, index),
        job_id=job,
        role=role,
        index=index,
        demand=cpu_mem(5, 10),
    )


class TestNodes:
    def test_register_and_get(self, api):
        node = api.node("n0")
        assert node.capacity == cpu_mem(16, 64)
        assert node.allocatable == cpu_mem(16, 64)

    def test_duplicate_rejected(self, api):
        with pytest.raises(KVStoreError):
            api.register_node("n0", cpu_mem(1, 1))

    def test_unknown_node(self, api):
        with pytest.raises(KVStoreError):
            api.node("n9")

    def test_list_nodes(self, api):
        assert {n.name for n in api.list_nodes()} == {"n0", "n1"}


class TestPods:
    def test_create_and_get(self, api):
        api.create_pod(pod())
        fetched = api.pod("j1/worker-0")
        assert fetched.phase == PHASE_PENDING
        assert not fetched.bound

    def test_duplicate_rejected(self, api):
        api.create_pod(pod())
        with pytest.raises(KVStoreError):
            api.create_pod(pod())

    def test_create_bound_rejected(self, api):
        bad = pod()
        bad.node = "n0"
        with pytest.raises(KVStoreError):
            api.create_pod(bad)

    def test_bind_allocates_capacity(self, api):
        api.create_pod(pod())
        bound = api.bind_pod("j1/worker-0", "n0")
        assert bound.phase == PHASE_RUNNING
        assert api.node("n0").allocatable == cpu_mem(11, 54)

    def test_bind_over_capacity_rejected(self, api):
        for i in range(3):
            api.create_pod(pod(index=i))
            api.bind_pod(pod_name("j1", "worker", i), "n0")
        api.create_pod(pod(index=3))
        with pytest.raises(KVStoreError):
            api.bind_pod("j1/worker-3", "n0")

    def test_double_bind_rejected(self, api):
        api.create_pod(pod())
        api.bind_pod("j1/worker-0", "n0")
        with pytest.raises(KVStoreError):
            api.bind_pod("j1/worker-0", "n1")

    def test_delete_releases_capacity(self, api):
        api.create_pod(pod())
        api.bind_pod("j1/worker-0", "n0")
        assert api.delete_pod("j1/worker-0")
        assert api.node("n0").allocatable == cpu_mem(16, 64)
        assert not api.delete_pod("j1/worker-0")

    def test_delete_unbound(self, api):
        api.create_pod(pod())
        assert api.delete_pod("j1/worker-0")

    def test_list_pods_filters(self, api):
        api.create_pod(pod("j1", "worker", 0))
        api.create_pod(pod("j1", "ps", 0))
        api.create_pod(pod("j2", "worker", 0))
        api.bind_pod("j1/worker-0", "n0")
        assert len(api.list_pods()) == 3
        assert len(api.list_pods(job_id="j1")) == 2
        assert len(api.list_pods(node="n0")) == 1

    def test_restart_pod_counts(self, api):
        api.create_pod(pod())
        api.bind_pod("j1/worker-0", "n0")
        restarted = api.restart_pod("j1/worker-0")
        assert restarted.restarts == 1
        assert restarted.phase == PHASE_RUNNING


class TestAggregates:
    def test_cluster_allocated(self, api):
        api.create_pod(pod("j1", "worker", 0))
        api.create_pod(pod("j1", "ps", 0))
        api.bind_pod("j1/worker-0", "n0")
        api.bind_pod("j1/ps-0", "n1")
        assert api.cluster_allocated() == cpu_mem(10, 20)

    def test_pods_per_job(self, api):
        api.create_pod(pod("j1", "worker", 0))
        api.create_pod(pod("j2", "worker", 0))
        api.create_pod(pod("j2", "ps", 0))
        assert api.pods_per_job() == {"j1": 1, "j2": 2}


class TestSerialisation:
    def test_pod_roundtrip(self):
        original = pod()
        restored = PodSpec.from_json(original.to_json())
        assert restored == original

    def test_persisted_in_store(self, api):
        api.create_pod(pod())
        assert "/pods/j1/worker-0" in api.store
        assert "/nodes/n0" in api.store
