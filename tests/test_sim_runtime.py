"""Tests for the per-job runtime state."""

import pytest

from repro.common.rand import RandomSource
from repro.core.allocation import TaskAllocation
from repro.datastore import ChunkStore
from repro.sim.runtime import PRIOR_EPOCHS, RuntimeJob, ScalingCosts
from repro.workloads import make_job


def runtime(mode="sync", model="seq2seq", scale=0.05, seed=1, **kwargs):
    spec = make_job(model, mode=mode, job_id=f"rt-{model}", dataset_scale=scale)
    return RuntimeJob(spec, seed=RandomSource(seed), **kwargs)


class TestLifecycle:
    def test_initial_state(self):
        job = runtime()
        assert job.steps_done == 0
        assert not job.completed
        assert not job.started

    def test_scaling_overhead_first_start(self):
        job = runtime()
        cost = job.scaling_overhead(TaskAllocation(2, 2))
        assert cost == job.scaling_costs.start_cost()

    def test_no_overhead_when_unchanged(self):
        job = runtime()
        alloc = TaskAllocation(2, 2)
        job.note_interval(alloc, job.scaling_overhead(alloc))
        assert job.scaling_overhead(alloc) == 0.0

    def test_overhead_on_change(self):
        job = runtime()
        alloc = TaskAllocation(2, 2)
        job.note_interval(alloc, job.scaling_overhead(alloc))
        cost = job.scaling_overhead(TaskAllocation(3, 2))
        assert cost == job.scaling_costs.scale_cost(job.spec.profile.model_size_bytes)

    def test_overhead_on_resume_after_pause(self):
        job = runtime()
        alloc = TaskAllocation(2, 2)
        job.note_interval(alloc, job.scaling_overhead(alloc))
        job.note_interval(None, 0.0)  # paused
        assert job.scaling_overhead(alloc) > 0

    def test_scaling_bookkeeping(self):
        job = runtime()
        a1, a2 = TaskAllocation(2, 2), TaskAllocation(3, 3)
        job.note_interval(a1, job.scaling_overhead(a1))
        job.note_interval(a2, job.scaling_overhead(a2))
        assert job.num_scalings == 1
        assert job.scaling_time_total > 0


class TestAdvance:
    def test_progresses_steps(self):
        job = runtime()
        assert job.advance(run_time=100, speed=2.0) is None
        assert job.steps_done == pytest.approx(200)

    def test_completes_at_observed_convergence(self):
        job = runtime(model="cnn-rand", scale=1.0)
        # Run absurdly fast so convergence must fire inside the window.
        offset = job.advance(run_time=1000, speed=1e6)
        assert offset is not None
        assert job.completed
        assert 0 < offset <= 1000

    def test_completion_near_smooth_truth(self):
        job = runtime(model="seq2seq", scale=0.05)
        offset = job.advance(run_time=1e9, speed=1.0)
        assert job.completed
        # Observed stopping should land within ~35% of the smooth-curve
        # prediction (epoch-loss noise moves it a little).
        assert job.steps_done == pytest.approx(job.true_total_steps, rel=0.35)

    def test_zero_speed_no_progress(self):
        job = runtime()
        assert job.advance(run_time=100, speed=0.0) is None
        assert job.steps_done == 0

    def test_completed_job_advances_no_further(self):
        job = runtime(model="cnn-rand", scale=1.0)
        job.advance(run_time=1000, speed=1e6)
        steps = job.steps_done
        assert job.advance(run_time=1000, speed=1e6) == 0.0
        assert job.steps_done == steps

    def test_async_staleness_requires_more_raw_steps(self):
        few = runtime(mode="async", model="cnn-rand", scale=1.0, seed=3)
        many = runtime(mode="async", model="cnn-rand", scale=1.0, seed=3)
        few.advance(run_time=1e9, speed=1.0, workers=1)
        many.advance(run_time=1e9, speed=1.0, workers=20)
        assert many.steps_done > few.steps_done
        # Convergence-equivalent progress is what stops the job.
        assert many.effective_steps == pytest.approx(few.effective_steps, rel=0.25)

    def test_sync_unaffected_by_staleness(self):
        job = runtime(mode="sync")
        assert job.staleness_penalty(20) == 1.0


class TestEstimates:
    def test_prior_before_data(self):
        job = runtime()
        remaining = job.estimated_remaining_steps()
        assert remaining == pytest.approx(PRIOR_EPOCHS * job.steps_per_epoch)

    def test_online_floor_while_running(self):
        job = runtime()
        job.advance(run_time=600, speed=1.0)
        job.record_losses(0, job.steps_done, max_points=50)
        floor = job.spec.patience * job.steps_per_epoch
        assert job.estimated_remaining_steps() >= floor

    def test_oracle_mode(self):
        job = runtime(estimator_mode="oracle")
        job.advance(run_time=100, speed=2.0)
        remaining = job.estimated_remaining_steps()
        expected = job.true_total_steps - job.effective_steps
        assert remaining == pytest.approx(max(expected, 2 * job.steps_per_epoch))

    def test_noisy_mode_biased_then_decaying(self):
        job = runtime(estimator_mode="noisy", convergence_error=0.5, seed=7)
        early = job.estimated_remaining_steps()
        truth = job.true_total_steps
        assert early != pytest.approx(truth)  # biased at start
        assert abs(early - truth) / truth <= 0.5 + 1e-6

    def test_speed_function_modes(self):
        oracle = runtime(estimator_mode="oracle")
        fn = oracle.speed_function()
        assert fn(4, 4) == pytest.approx(oracle.truth.speed(4, 4))

        noisy = runtime(estimator_mode="noisy", speed_error=0.3, seed=5)
        fn_noisy = noisy.speed_function()
        # Per-configuration distortion bounded by the error magnitude...
        ratios = [fn_noisy(p, w) / noisy.truth.speed(p, w)
                  for p in (2, 4, 8) for w in (2, 4, 8)]
        assert all(0.7 - 1e-9 <= r <= 1.3 + 1e-9 for r in ratios)
        # ...deterministic per configuration, and not globally uniform.
        assert fn_noisy(4, 4) == fn_noisy(4, 4)
        assert max(ratios) - min(ratios) > 0.01

    def test_online_speed_after_bootstrap(self):
        job = runtime(estimator_mode="online")
        job.bootstrap_speed(num_samples=6)
        fn = job.speed_function()
        assert fn(4, 4) == pytest.approx(job.truth.speed(4, 4), rel=0.25)

    def test_view_snapshot(self):
        job = runtime()
        view = job.view()
        assert view.job_id == job.spec.job_id
        assert view.remaining_steps > 0
        assert view.progress == 0.0


class TestImbalance:
    def test_paa_near_one(self):
        # resnet-50 has many blocks, so PAA can balance almost perfectly;
        # models with few coarse blocks (e.g. seq2seq) balance less tightly.
        job = runtime(partition_algorithm="paa", model="resnet-50")
        assert 1.0 <= job.imbalance_factor(10) < 1.1

    def test_mxnet_worse(self):
        paa = runtime(partition_algorithm="paa", model="resnet-50")
        mxnet = runtime(partition_algorithm="mxnet", model="resnet-50")
        assert mxnet.imbalance_factor(10) > paa.imbalance_factor(10)

    def test_cached(self):
        job = runtime()
        assert job.imbalance_factor(4) == job.imbalance_factor(4)


class TestDataServing:
    def test_attach_and_rebalance(self):
        job = runtime()
        store = ChunkStore(["dn-0", "dn-1"])
        job.attach_data(store)
        moved = job.rebalance_data(4)
        assert job.chunk_assignment.num_workers == 4
        assert job.chunks_moved == moved

    def test_note_interval_rebalances(self):
        job = runtime()
        store = ChunkStore(["dn-0", "dn-1"])
        job.attach_data(store)
        alloc = TaskAllocation(4, 2)
        job.note_interval(alloc, job.scaling_overhead(alloc))
        assert job.chunk_assignment.num_workers == 4


class TestScalingCosts:
    def test_scale_cost_grows_with_model(self):
        costs = ScalingCosts()
        assert costs.scale_cost(1e9) > costs.scale_cost(1e6)
        assert costs.scale_cost(1e6) > costs.start_cost()
