"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The execution environment has setuptools but no `wheel` package and no
network access, which breaks PEP-517 editable installs; this file lets pip
fall back to `setup.py develop`. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
