#!/usr/bin/env python
"""Capacity planning with the simulator: how many servers does a workload need?

A downstream use of the reproduction beyond the paper's own experiments:
sweep the cluster size for a fixed workload under Optimus, watch makespan
and utilisation, and find the knee where extra servers stop paying for
themselves.

Run:  python examples/capacity_planning.py
"""

from repro import Cluster, SimConfig, cpu_mem, make_scheduler, simulate
from repro.report import format_table, sparkline
from repro.workloads import uniform_arrivals

SERVER_COUNTS = (6, 9, 13, 18, 24)


def main() -> None:
    jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42)
    print(f"workload: {len(jobs)} jobs over {12_000/3600:.1f} h "
          f"(the paper's §6.1 recipe)\n")

    rows = []
    makespans = []
    for servers in SERVER_COUNTS:
        cluster = Cluster.homogeneous(servers, cpu_mem(16, 80))
        result = simulate(
            cluster, make_scheduler("optimus"), jobs, SimConfig(seed=7)
        )
        rows.append(
            [
                servers,
                result.average_jct / 3600,
                result.makespan / 3600,
                result.mean_running_tasks(),
                result.mean_worker_utilization(),
            ]
        )
        makespans.append(result.makespan)

    print(
        format_table(
            ["servers", "avg JCT (h)", "makespan (h)", "mean tasks", "worker util"],
            rows,
        )
    )
    print(f"\nmakespan vs cluster size: {sparkline(makespans)}")

    # The knee: the first size whose marginal makespan gain drops under 10%.
    knee = SERVER_COUNTS[-1]
    for i in range(1, len(SERVER_COUNTS)):
        gain = (makespans[i - 1] - makespans[i]) / makespans[i - 1]
        if gain < 0.10:
            knee = SERVER_COUNTS[i - 1]
            break
    print(
        f"suggested fleet size: ~{knee} servers "
        f"(beyond it, adding servers improves makespan by <10%)"
    )


if __name__ == "__main__":
    main()
