#!/usr/bin/env python
"""Post-hoc analysis of a simulation: export, reload, chart in the terminal.

Runs the Fig-11 comparison, serialises every result to JSON (the same
format ``python -m repro simulate --json`` emits), then reloads the data
and renders JCT distributions, utilisation summaries and task timelines
with the plain-text charting helpers -- the workflow a user would follow to
analyse their own experiments offline.

Run:  python examples/result_analysis.py
"""

import json
import statistics
import tempfile
from pathlib import Path

from repro import Cluster, SimConfig, cpu_mem, make_scheduler, simulate
from repro.report import bar_chart, format_table, result_to_json, sparkline
from repro.workloads import uniform_arrivals


def run_and_export(outdir: Path) -> dict:
    jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42)
    paths = {}
    for name in ("optimus", "drf", "tetris"):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        result = simulate(cluster, make_scheduler(name), jobs, SimConfig(seed=7))
        path = outdir / f"{name}.json"
        path.write_text(result_to_json(result))
        paths[name] = path
    return paths


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        outdir = Path(tmp)
        paths = run_and_export(outdir)
        print(f"exported {len(paths)} result files to {outdir}\n")

        data = {name: json.loads(path.read_text()) for name, path in paths.items()}

        # Headline table, straight from the JSON.
        rows = []
        for name, payload in data.items():
            summary = payload["summary"]
            rows.append(
                [
                    name,
                    summary["average_jct"] / 3600,
                    summary["makespan"] / 3600,
                    summary["worker_utilization"],
                ]
            )
        print(format_table(
            ["scheduler", "avg JCT (h)", "makespan (h)", "worker util"], rows
        ))
        print()

        # Per-job JCT distribution for Optimus.
        jcts = sorted(
            job["jct"] / 3600
            for job in data["optimus"]["jobs"]
            if job["jct"] is not None
        )
        quantiles = statistics.quantiles(jcts, n=4)
        print(
            f"Optimus JCT quartiles (h): "
            f"p25={quantiles[0]:.2f} p50={quantiles[1]:.2f} p75={quantiles[2]:.2f}"
        )
        print(bar_chart(
            [(job["job_id"].split("-", 2)[-1], job["jct"] / 3600)
             for job in data["optimus"]["jobs"] if job["jct"]],
            width=30,
            unit="h",
        ))
        print()

        # Task timelines (Fig-14 style) from the serialised slots.
        print("running-task timelines:")
        for name, payload in data.items():
            series = [slot["running_tasks"] for slot in payload["timeline"]]
            print(f"  {name:8s} {sparkline(series)}")


if __name__ == "__main__":
    main()
