#!/usr/bin/env python
"""Quickstart: schedule a day of deep-learning jobs with Optimus.

Builds a 13-server cluster (the paper's testbed scale), submits 9 random
Table-1 training jobs over a 12 000-second window, and compares Optimus
against the DRF fairness baseline and Tetris -- the paper's Fig-11
experiment at demo scale.

Run:  python examples/quickstart.py
"""

from repro import Cluster, SimConfig, cpu_mem, make_scheduler, simulate
from repro.workloads import uniform_arrivals


def main() -> None:
    jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42)
    print(f"submitting {len(jobs)} jobs:")
    for job in jobs:
        print(
            f"  {job.job_id:24s} mode={job.mode:5s} "
            f"threshold={job.threshold:.4f} arrives at t={job.arrival_time:7.0f}s"
        )
    print()

    results = {}
    for name in ("optimus", "drf", "tetris"):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        results[name] = simulate(
            cluster, make_scheduler(name), jobs, SimConfig(seed=7)
        )

    base = results["optimus"]
    print(f"{'scheduler':10s} {'avg JCT':>10s} {'norm':>6s} {'makespan':>10s} {'norm':>6s}")
    for name, result in results.items():
        print(
            f"{name:10s} {result.average_jct/3600:9.2f}h "
            f"{result.average_jct/base.average_jct:6.2f} "
            f"{result.makespan/3600:9.2f}h "
            f"{result.makespan/base.makespan:6.2f}"
        )

    print()
    print("per-job completions under Optimus:")
    for record in sorted(base.jobs.values(), key=lambda r: r.arrival_time):
        print(
            f"  {record.job_id:24s} JCT {record.jct/3600:6.2f}h "
            f"({record.num_scalings} rescalings, "
            f"{record.chunks_moved} data chunks moved)"
        )


if __name__ == "__main__":
    main()
