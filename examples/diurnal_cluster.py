#!/usr/bin/env python
"""Harvesting night-time capacity (the paper's §1 motivation, §7 extension).

The paper's opening complaint about static schedulers: "jobs already
running in the cluster cannot benefit from extra resources when they become
available (e.g., during night time when there are lower workloads)".

This demo shares the cluster with a diurnal non-DL workload (heavy by day,
light by night) and submits a batch of training jobs in the evening.
Optimus automatically grows the jobs overnight and shrinks them at dawn; a
static FIFO scheduler keeps its fixed allocations and finishes much later.

Run:  python examples/diurnal_cluster.py
"""

from repro import Cluster, SimConfig, cpu_mem, make_scheduler, simulate
from repro.sim import diurnal_load
from repro.workloads import uniform_arrivals

EVENING = 18 * 3600.0  # jobs arrive around 18:00


def main() -> None:
    # Background load peaks at noon (0.65 of every server) and bottoms out
    # at midnight (0.05). t=0 is midnight.
    load = diurnal_load(trough=0.05, peak=0.65, phase=0.0)
    jobs = uniform_arrivals(
        num_jobs=6,
        window=3_600,
        seed=9,
        models=["seq2seq", "inception-bn", "rnn-lstm", "deepspeech2"],
    )
    # Shift arrivals into the evening.
    from dataclasses import replace

    jobs = [replace(job, arrival_time=job.arrival_time + EVENING) for job in jobs]

    results = {}
    for name in ("optimus", "fifo"):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        config = SimConfig(seed=7, background_load=load)
        results[name] = simulate(cluster, make_scheduler(name), jobs, config)

    print("background load by hour:", end=" ")
    print(" ".join(f"{load(h*3600):.2f}" for h in range(0, 24, 3)))
    print()

    for name, result in results.items():
        print(
            f"{name:8s} avg JCT {result.average_jct/3600:6.2f}h  "
            f"makespan {result.makespan/3600:6.2f}h  "
            f"finished {len(result.finished_jobs)}/{len(result.jobs)}"
        )
    print()

    print("Optimus running DL tasks per hour (note the overnight ramp-up):")
    for slot in results["optimus"].timeline[::6]:  # hourly samples
        hour = (slot.time / 3600.0) % 24
        bar = "#" * slot.running_tasks
        print(f"  {hour:5.1f}h  load={load(slot.time):.2f}  {bar} ({slot.running_tasks})")


if __name__ == "__main__":
    main()
