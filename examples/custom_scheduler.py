#!/usr/bin/env python
"""Plugging your own scheduler into the harness.

The evaluation pipeline treats schedulers as pluggable: anything
implementing :class:`repro.schedulers.Scheduler` can be simulated against
the paper's workloads and compared with Optimus. This example implements a
deliberately naive scheduler -- give every active job the same fixed (2, 2)
allocation, placed with the built-in spread policy -- and shows how far
behind Optimus it lands.

Run:  python examples/custom_scheduler.py
"""

from typing import Sequence

from repro import Cluster, SimConfig, cpu_mem, make_scheduler, simulate
from repro.cluster.cluster import Cluster as ClusterType
from repro.core.allocation import TaskAllocation
from repro.core.placement import PlacementRequest
from repro.schedulers import JobView, Scheduler, SchedulingDecision
from repro.schedulers.policies import spread_placement
from repro.workloads import uniform_arrivals


class FixedTwoByTwoScheduler(Scheduler):
    """Every job gets exactly 2 workers + 2 parameter servers, spread out.

    This is the "static resource allocation" §2.3 criticises, distilled:
    no job ever benefits from idle capacity, and no job ever shrinks to
    make room for a newcomer.
    """

    name = "fixed-2x2"

    def schedule(
        self, cluster: ClusterType, jobs: Sequence[JobView]
    ) -> SchedulingDecision:
        requests = [
            PlacementRequest(
                job_id=view.job_id,
                workers=2,
                ps=2,
                worker_demand=view.spec.worker_demand,
                ps_demand=view.spec.ps_demand,
            )
            for view in jobs
        ]
        placement = spread_placement(cluster, requests)
        allocations = {
            job_id: TaskAllocation(2, 2) for job_id in placement.layouts
        }
        decision = SchedulingDecision(
            allocations=allocations, layouts=dict(placement.layouts)
        )
        decision.validate()
        return decision


def main() -> None:
    jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42)
    results = {}
    for scheduler in (make_scheduler("optimus"), FixedTwoByTwoScheduler()):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        results[scheduler.name] = simulate(
            cluster, scheduler, jobs, SimConfig(seed=7)
        )

    base = results["optimus"]
    print(f"{'scheduler':10s} {'avg JCT':>9s} {'norm':>6s} {'makespan':>9s} {'norm':>6s}")
    for name, result in results.items():
        print(
            f"{name:10s} {result.average_jct/3600:8.2f}h "
            f"{result.average_jct/base.average_jct:6.2f} "
            f"{result.makespan/3600:8.2f}h "
            f"{result.makespan/base.makespan:6.2f}"
        )
    print(
        "\nthe static scheduler leaves the cluster idle whenever fewer than "
        "ten jobs are active,\nand starves nothing -- it is simply slow "
        "everywhere, which is §2.3's point."
    )


if __name__ == "__main__":
    main()
