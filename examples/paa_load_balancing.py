#!/usr/bin/env python
"""Parameter-server load balancing with PAA (§5.3 of the paper).

Compares the paper's Parameter Assignment Algorithm against MXNet's default
threshold-based partitioner on ResNet-50's 157 parameter blocks (Table 3)
and shows how the resulting imbalance translates into training speed as the
number of parameter servers grows (Fig. 20).

Run:  python examples/paa_load_balancing.py
"""

from repro.ps import blocks_from_sizes, mxnet_partition, paa_partition
from repro.workloads import StepTimeModel, get_profile


def main() -> None:
    profile = get_profile("resnet-50")
    blocks = blocks_from_sizes(profile.parameter_blocks())
    print(
        f"{profile.name}: {profile.params_million:.0f}M parameters in "
        f"{len(blocks)} blocks (largest {max(b.size for b in blocks)/1e6:.2f}M)"
    )
    print()

    print("Table-3 style comparison at 10 parameter servers:")
    print(f"{'algorithm':>10s} {'size diff':>11s} {'req diff':>9s} {'total reqs':>11s}")
    for assignment in (
        mxnet_partition(blocks, 10, seed=1),
        paa_partition(blocks, 10),
    ):
        print(
            f"{assignment.algorithm:>10s} "
            f"{assignment.size_difference/1e6:9.2f} M "
            f"{assignment.request_difference:9d} "
            f"{assignment.total_requests:11d}"
        )
    print()

    print("Fig-20 style speed sweep (synchronous, 10 workers):")
    truth = StepTimeModel(profile, "sync")
    print(f"{'#ps':>4s} {'PAA speed':>10s} {'MXNet speed':>12s} {'gain':>7s}")
    for p in (2, 4, 8, 12, 16, 20):
        paa = truth.speed(p, 10, imbalance=paa_partition(blocks, p).imbalance_factor)
        mx = truth.speed(
            p, 10, imbalance=mxnet_partition(blocks, p, seed=1).imbalance_factor
        )
        print(f"{p:4d} {paa:10.4f} {mx:12.4f} {100*(paa/mx-1):+6.1f}%")

    print()
    print("per-server load under each algorithm (10 ps):")
    for assignment in (
        mxnet_partition(blocks, 10, seed=1),
        paa_partition(blocks, 10),
    ):
        loads = " ".join(
            f"{s.assigned_size/1e6:5.2f}M" for s in assignment.servers
        )
        print(f"  {assignment.algorithm:>6s}: {loads}")


if __name__ == "__main__":
    main()
