#!/usr/bin/env python
"""Optimus driving the orchestration substrate (§5.4-5.5 of the paper).

Runs the deployment control loop: each interval the scheduler produces a
decision, the job controller reconciles it into pod create/bind/delete
operations against the etcd-backed API server (checkpointing on every
rescale), and the HDFS-like chunk store rebalances training data whenever a
job's worker count changes. At the end, the loop "crashes" and a fresh one
recovers job progress from etcd (§5.5 fault tolerance).

Run:  python examples/elastic_scaling_k8s.py
"""

from repro import Cluster, cpu_mem, make_scheduler
from repro.datastore import ChunkAssignment, ChunkStore
from repro.deploy import ControlLoop
from repro.k8s import APIServer
from repro.schedulers import JobView
from repro.workloads import StepTimeModel, make_job


def main() -> None:
    cluster = Cluster.homogeneous(5, cpu_mem(16, 64))
    api = APIServer()
    for server in cluster:
        api.register_node(server.name, server.capacity)
    loop = ControlLoop(api, make_scheduler("optimus"))

    # Two jobs sharing the cluster; their estimated remaining work shrinks
    # between scheduling intervals, so Optimus re-sizes them.
    specs = {
        "translate": make_job("seq2seq", mode="sync", job_id="translate"),
        "classify": make_job("inception-bn", mode="sync", job_id="classify"),
    }
    truths = {j: StepTimeModel(s.profile, s.mode) for j, s in specs.items()}
    remaining = {"translate": 60_000.0, "classify": 12_000.0}
    total = dict(remaining)

    store = ChunkStore(list(cluster.server_names))
    data = {}
    for job_id, spec in specs.items():
        f = store.add_file(f"data/{job_id}", spec.profile.dataset_examples * 3072)
        data[job_id] = ChunkAssignment(f, 1)

    def views():
        return [
            JobView(
                spec=specs[job_id],
                remaining_steps=remaining[job_id],
                speed=lambda p, w, t=truths[job_id]: t.speed(p, w),
                observation_count=100,
            )
            for job_id in specs
            if remaining[job_id] > 0
        ]

    progress = lambda: {j: total[j] - r for j, r in remaining.items()}

    for interval in range(3):
        print(f"=== scheduling interval {interval} ===")
        active = views()
        if not active:
            break
        report = loop.step(active, progress=progress())
        print(
            f"reconcile: +{report.reconcile.pods_created} pods, "
            f"-{report.reconcile.pods_deleted} pods, "
            f"{report.reconcile.checkpoints_saved} checkpoints saved, "
            f"scaled: {list(report.reconcile.jobs_scaled) or 'nothing'}"
        )
        for job_id, alloc in report.decision.allocations.items():
            moved = data[job_id].rebalance(alloc.workers)
            print(
                f"  {job_id:10s} -> {alloc.workers} workers + {alloc.ps} ps on "
                f"{len(report.decision.layouts[job_id])} servers; "
                f"{moved} data chunks moved to rebalance"
            )
        print(
            f"cluster now runs {len(api.list_pods())} pods; "
            f"etcd holds {len(api.store)} keys"
        )

        # Fake progress between intervals: the short job races ahead.
        remaining["classify"] = max(remaining["classify"] - 12_000.0, 0.0)
        remaining["translate"] = max(remaining["translate"] - 18_000.0, 0.0)
        print()

    loop.drain(progress=progress())
    print("scheduler 'crashed'; a fresh instance recovers from etcd:")
    recovered_loop = ControlLoop(api, make_scheduler("optimus"))
    recovered = recovered_loop.recover(list(specs))
    for job_id, steps in recovered.items():
        print(f"  {job_id:10s} resumes from checkpointed step {steps:,.0f}")


if __name__ == "__main__":
    main()
