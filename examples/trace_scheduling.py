#!/usr/bin/env python
"""Scheduling a bursty trace with stragglers (§5.2 + §6.3 of the paper).

Replays a synthetic Google-trace-like arrival process (job spikes, as in
Fig. 17b) on the testbed-shaped cluster with straggler injection enabled,
and compares all four schedulers. Also prints the Fig-14 style timeline of
running tasks for Optimus vs DRF.

Run:  python examples/trace_scheduling.py
"""

from repro import Cluster, SimConfig, StragglerConfig, cpu_mem, make_scheduler, simulate
from repro.workloads import google_trace_arrivals


def main() -> None:
    jobs = google_trace_arrivals(num_jobs=12, duration=9_000, seed=24)
    spikes = {}
    for job in jobs:
        spikes[int(job.arrival_time // 600)] = spikes.get(int(job.arrival_time // 600), 0) + 1
    print("arrival spikes (jobs per 10-minute slot):")
    print("  " + " ".join(f"{spikes.get(i, 0)}" for i in range(16)))
    print()

    config = SimConfig(
        seed=7,
        stragglers=StragglerConfig(rate=0.03, handling_enabled=True),
    )
    results = {}
    for name in ("optimus", "drf", "tetris", "fifo"):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        results[name] = simulate(cluster, make_scheduler(name), jobs, config)

    base = results["optimus"]
    print(f"{'scheduler':10s} {'avg JCT':>9s} {'norm':>6s} {'makespan':>9s} "
          f"{'norm':>6s} {'finished':>9s}")
    for name, result in results.items():
        print(
            f"{name:10s} {result.average_jct/3600:8.2f}h "
            f"{result.average_jct/base.average_jct:6.2f} "
            f"{result.makespan/3600:8.2f}h "
            f"{result.makespan/base.makespan:6.2f} "
            f"{len(result.finished_jobs):6d}/{len(result.jobs)}"
        )

    print()
    print("running tasks per interval (first 20 slots):")
    for name in ("optimus", "drf"):
        series = [slot.running_tasks for slot in results[name].timeline][:20]
        print(f"  {name:8s}: " + " ".join(f"{t:3d}" for t in series))
    print()
    print(
        "normalised worker utilisation: "
        + ", ".join(
            f"{name} {100*result.mean_worker_utilization():.0f}%"
            for name, result in results.items()
        )
    )


if __name__ == "__main__":
    main()
