#!/usr/bin/env python
"""Online performance modelling of one training job (§3 of the paper).

Streams noisy loss observations from a simulated Seq2Seq training run into
the convergence estimator, profiles a handful of (ps, workers)
configurations into the speed estimator, and shows both models sharpening:

* the predicted total epochs to convergence approaches the truth (Fig. 6/7);
* the fitted speed function tracks the measured surface (Fig. 8/9).

Run:  python examples/online_fitting_demo.py
"""

from repro import ConvergenceEstimator, SpeedEstimator
from repro.workloads import LossEmitter, StepTimeModel, make_job


def convergence_demo() -> None:
    job = make_job("seq2seq", mode="sync", threshold=0.002)
    spe = job.steps_per_epoch()
    true_epochs = job.profile.loss.epochs_to_converge(job.threshold, job.patience)
    emitter = LossEmitter(job.profile.loss, spe, seed=11)
    estimator = ConvergenceEstimator(threshold=job.threshold, steps_per_epoch=spe)

    print(f"--- §3.1 convergence estimation ({job.model_name}) ---")
    print(f"ground truth: converges after {true_epochs} epochs")
    fed = 0
    for progress in (0.1, 0.25, 0.5, 0.75):
        upto = int(true_epochs * progress * spe)
        for obs in emitter.observe_range(fed, upto, stride=200):
            estimator.add_observation(obs.step, obs.loss)
        fed = upto
        fit = estimator.fit(force=True)
        predicted = fit.epochs_to_converge(job.threshold, spe, job.patience)
        print(
            f"after {int(progress*100):3d}% of training: predicted "
            f"{predicted:4d} epochs (error {100*(predicted-true_epochs)/true_epochs:+5.1f}%), "
            f"fit b0={fit.beta0:.2e} b1={fit.beta1:.3f} b2={fit.beta2:.3f}"
        )
    print()


def speed_demo() -> None:
    job = make_job("resnet-50", mode="sync")
    truth = StepTimeModel(job.profile, job.mode)
    estimator = SpeedEstimator(job.mode, global_batch=job.profile.global_batch)

    print(f"--- §3.2 resource->speed estimation ({job.model_name}) ---")
    configs = estimator.bootstrap(
        measure=lambda p, w: truth.measured_speed(p, w, seed=p * 31 + w),
        num_samples=5,
        seed=3,
    )
    print(f"profiled configurations: {configs}")
    print(f"{'(p, w)':>8s} {'true speed':>11s} {'predicted':>10s} {'error':>7s}")
    for p, w in ((2, 2), (6, 10), (12, 8), (16, 16)):
        true = truth.speed(p, w)
        predicted = estimator.predict(p, w)
        print(
            f"({p:2d},{w:3d}) {true:11.4f} {predicted:10.4f} "
            f"{100*(predicted-true)/true:+6.1f}%"
        )

    # The scheduler's actual question: where do marginal gains die?
    surface = {(p, w): estimator.predict(p, w) for p in range(1, 21) for w in range(1, 21)}
    (best_p, best_w) = max(surface, key=surface.get)
    print(
        f"fitted optimum at p={best_p}, w={best_w} "
        f"(true speed there: {truth.speed(best_p, best_w):.4f} steps/s)"
    )


if __name__ == "__main__":
    convergence_demo()
    speed_demo()
