"""Fig. 18 -- effectiveness of the marginal-gain resource allocation.

Paper: keeping Optimus's placement but swapping its allocation for the
fairness scheduler's (or Tetris') increases average JCT by ~62% and
makespan by ~31% -- allocation is the biggest contributor.

We run the hybrid schedulers ``drf+optimus`` and ``tetris+optimus``
(baseline allocation + Optimus placement) against full Optimus.
"""

from bench_common import paper_workload, report, run_scheduler

VARIANTS = ("optimus", "drf+optimus", "tetris+optimus")


def run_ablation():
    jobs = paper_workload(seed=42)
    return {name: run_scheduler(name, jobs=jobs, seed=7) for name in VARIANTS}


def test_fig18_allocation_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    base = results["optimus"]

    # Optimus allocation is no worse than either baseline allocation under
    # identical placement, and beats at least one by a clear margin.
    ratios = {
        name: results[name].average_jct / base.average_jct
        for name in VARIANTS[1:]
    }
    assert all(r > 0.97 for r in ratios.values())
    assert max(ratios.values()) > 1.05

    lines = [
        "paper Fig. 18 (Optimus placement everywhere, allocation swapped):",
        "normalised JCT drf=1.62, tetris=1.33; makespan drf=1.31, tetris=1.13",
        "",
        f"{'variant':16s} {'JCT(h)':>8s} {'norm':>6s} {'makespan(h)':>12s} {'norm':>6s}",
    ]
    for name in VARIANTS:
        result = results[name]
        lines.append(
            f"{name:16s} {result.average_jct/3600:8.2f} "
            f"{result.average_jct/base.average_jct:6.2f} "
            f"{result.makespan/3600:12.2f} "
            f"{result.makespan/base.makespan:6.2f}"
        )
    report("fig18_allocation_ablation", lines)
