"""Fig. 17 -- sensitivity to job arrival processes.

Paper: Optimus keeps beating DRF and Tetris under (a) Poisson arrivals
(3 jobs per 10-minute interval) and (b) arrivals extracted from the Google
cluster trace, whose spikes Optimus absorbs better.
"""

from bench_common import normalised_row, report, run_scheduler
from repro.workloads import google_trace_arrivals, poisson_arrivals

SCHEDULERS = ("optimus", "drf", "tetris")


def run_arrivals():
    workloads = {
        "poisson": poisson_arrivals(
            rate_per_interval=3, interval=600, duration=3_000, seed=42
        ),
        "google": google_trace_arrivals(num_jobs=14, duration=9_000, seed=42),
    }
    return {
        label: {
            name: run_scheduler(name, jobs=jobs, seed=7) for name in SCHEDULERS
        }
        for label, jobs in workloads.items()
    }


def test_fig17_arrival_processes(benchmark):
    results = benchmark.pedantic(run_arrivals, rounds=1, iterations=1)

    norms = {label: normalised_row(res) for label, res in results.items()}
    for label in ("poisson", "google"):
        for baseline in ("drf", "tetris"):
            assert norms[label][baseline]["jct"] > 1.0, (label, baseline)

    lines = [
        "paper Fig. 17: Optimus wins under Poisson and Google-trace",
        "arrivals (paper normalised JCT: poisson drf=2.0, tetris=1.82;",
        " google drf=2.2, tetris=1.78), with the larger gain on the bursty",
        "trace.",
        "",
    ]
    for label, res in results.items():
        jobs = len(next(iter(res.values())).jobs)
        lines.append(f"-- {label} arrivals ({jobs} jobs) --")
        lines.append(
            f"{'scheduler':10s} {'JCT(h)':>8s} {'norm':>6s} "
            f"{'makespan(h)':>12s} {'norm':>6s}"
        )
        for name in SCHEDULERS:
            result = res[name]
            lines.append(
                f"{name:10s} {result.average_jct/3600:8.2f} "
                f"{norms[label][name]['jct']:6.2f} "
                f"{result.makespan/3600:12.2f} "
                f"{norms[label][name]['makespan']:6.2f}"
            )
        lines.append("")
    report("fig17_arrival_processes", lines)
