"""JCT/utilisation degradation under injected node failures.

Optimus claims fault tolerance (§5.4–§5.5); this bench quantifies what
faults actually *cost*. For Optimus and a baseline scheduler it sweeps node
MTBF from "no failures" to "a node dies every couple of hours", with
checkpoint-bounded restart enabled, and reports

* average JCT at each failure rate (absolute and relative to fault-free),
* total crash-induced restarts and training steps destroyed,
* mean cluster utilisation (running tasks per slot).

Expected shape: JCT degrades monotonically (within tolerance -- restarts
reshuffle the schedule, which occasionally helps a straggling job) as MTBF
falls, every run still completes, and progress lost per restart stays
bounded by the checkpoint interval. A scheduler's value shows precisely
when the cluster misbehaves.
"""

from __future__ import annotations

from bench_common import paper_workload, report, run_scheduler
from repro.faults import FaultConfig

SCHEDULERS = ("optimus", "drf")
#: Node mean-time-between-failures levels: off, rare, frequent (seconds).
MTBF_LEVELS = (0.0, 40_000.0, 10_000.0)
#: Progress checkpoint cadence: bounds the steps a crash can destroy.
CHECKPOINT_INTERVAL = 1_800.0
SEED = 11
#: Crashed jobs must finish eventually even under the harshest level.
MAX_TIME = 14 * 86_400.0


def run_grid():
    """{scheduler: {mtbf: SimulationResult}} over the paper workload."""
    grid = {}
    for scheduler in SCHEDULERS:
        grid[scheduler] = {}
        for mtbf in MTBF_LEVELS:
            grid[scheduler][mtbf] = run_scheduler(
                scheduler,
                jobs=paper_workload(seed=SEED),
                seed=SEED,
                estimator_mode="oracle",
                max_time=MAX_TIME,
                faults=FaultConfig(node_mtbf=mtbf),
                checkpoint_interval=CHECKPOINT_INTERVAL,
            )
    return grid


def _describe(grid):
    lines = []
    for scheduler, by_mtbf in grid.items():
        base = by_mtbf[MTBF_LEVELS[0]].average_jct
        for mtbf, result in by_mtbf.items():
            restarts = sum(r.num_restarts for r in result.jobs.values())
            steps_lost = sum(r.steps_lost for r in result.jobs.values())
            tasks = [slot.running_tasks for slot in result.timeline]
            mean_tasks = sum(tasks) / max(len(tasks), 1)
            label = "off" if mtbf == 0 else f"{mtbf:.0f}s"
            lines.append(
                f"{scheduler:8s} mtbf={label:7s} "
                f"avg JCT {result.average_jct / 3600:6.2f} h "
                f"(x{result.average_jct / base:4.2f} vs fault-free)  "
                f"restarts {restarts:3d}  steps lost {steps_lost:9.0f}  "
                f"mean tasks {mean_tasks:5.1f}"
            )
    return lines


def test_faults_jct_degradation(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    report("bench_faults_jct_degradation", _describe(grid))

    for scheduler in SCHEDULERS:
        by_mtbf = grid[scheduler]
        # Fault-free runs must finish, and the fault-free level must inject
        # nothing at all.
        clean = by_mtbf[MTBF_LEVELS[0]]
        assert clean.all_finished
        assert sum(r.num_restarts for r in clean.jobs.values()) == 0

        # The harshest failure rate must actually bite (restarts happen)
        # and must not be *cheaper* than fault-free beyond noise tolerance.
        harsh = by_mtbf[MTBF_LEVELS[-1]]
        assert sum(r.num_restarts for r in harsh.jobs.values()) > 0
        assert harsh.average_jct >= 0.95 * clean.average_jct
