"""§6.3 (text) -- the priority-factor technique for young jobs.

The paper evaluates downgrading the marginal gain of jobs whose predictions
are still unreliable by a factor of 0.95 and reports 2.66% / 1.88% smaller
average JCT / makespan than factor 1.0.

We sweep the factor over several seeds; the shape to hold is that a mild
downgrade never hurts materially (within noise of the factor-1.0 baseline)
-- the effect itself is small by the paper's own account.
"""

import numpy as np

from bench_common import paper_workload, report
from repro.cluster import Cluster, cpu_mem
from repro.schedulers import OptimusScheduler
from repro.sim import SimConfig, simulate

FACTORS = (1.0, 0.95, 0.8)
SEEDS = (7, 8, 9)


def run_sweep():
    jobs = paper_workload(seed=42)
    out = {}
    for factor in FACTORS:
        jcts, makespans = [], []
        for seed in SEEDS:
            cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
            result = simulate(
                cluster,
                OptimusScheduler(priority_factor=factor),
                jobs,
                SimConfig(seed=seed),
            )
            jcts.append(result.average_jct)
            makespans.append(result.makespan)
        out[factor] = (float(np.mean(jcts)), float(np.mean(makespans)))
    return out


def test_ablation_priority_factor(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base_jct, base_mk = results[1.0]
    # The paper's 0.95 tweak is worth ~2.7%; at minimum it must not cost
    # more than a few percent in our reproduction.
    assert results[0.95][0] < base_jct * 1.08
    assert results[0.95][1] < base_mk * 1.08

    lines = [
        "paper §6.3: priority factor 0.95 gives 2.66% lower JCT and 1.88%",
        "lower makespan than factor 1.0.",
        "",
        f"{'factor':>7s} {'JCT(h)':>8s} {'norm':>7s} {'makespan(h)':>12s} {'norm':>7s}",
    ]
    for factor in FACTORS:
        jct, mk = results[factor]
        lines.append(
            f"{factor:7.2f} {jct/3600:8.2f} {jct/base_jct:7.3f} "
            f"{mk/3600:12.2f} {mk/base_mk:7.3f}"
        )
    report("ablation_priority_factor", lines)
