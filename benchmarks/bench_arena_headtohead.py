"""Arena head-to-head -- the pinned policy race that CI gates.

Races the registry's headline policies (Optimus §4.1, Pollux-style
goodput, OASiS-style online primal-dual, DRF) on one seeded paper-scale
trace via :func:`repro.sim.run_arena`, and writes the flat gate report
(``ArenaReport.gate_dict``) that ``benchmarks/check_regression.py`` diffs
against the committed ``BENCH_arena.json`` baseline. Because the trace,
seed, and engine are pinned, every number is deterministic: any drift is
a behaviour change in a policy or the engine, not noise.

Run it directly to regenerate the baseline::

    python benchmarks/bench_arena_headtohead.py --output BENCH_arena.json
"""

import argparse
import json
import sys

from bench_common import (
    PAPER_ARRIVAL_WINDOW,
    PAPER_NUM_JOBS,
    paper_cluster,
    paper_workload,
    report,
    smoke_mode,
)
from repro.sim import SimConfig, format_arena, run_arena

#: What benchmarks/smoke.py runs at smoke scale.
SMOKE_PRODUCERS = ("run_headtohead",)

#: The pinned race: baseline first, then the two new online policies and
#: the fairness straw man.
ARENA_POLICIES = ("optimus", "goodput", "oasis", "drf")
ARENA_SEED = 42


def run_headtohead(policies=ARENA_POLICIES, seed=ARENA_SEED, engine=None):
    """Race *policies* on the §6.1 trace; returns the :class:`ArenaReport`.

    Smoke mode (``BENCH_SMOKE=1``) shrinks the trace through
    :func:`bench_common.paper_workload` but races the same policy set.
    """
    config = SimConfig(seed=seed, estimator_mode="online")
    return run_arena(
        list(policies),
        paper_cluster,
        paper_workload(seed=seed),
        config=config,
        engine=engine,
        baseline=policies[0],
    )


def run_headtohead_gate(policies=ARENA_POLICIES, seed=ARENA_SEED, engine=None):
    """The flat gate dictionary for ``check_regression.py``."""
    return run_headtohead(policies, seed=seed, engine=engine).gate_dict()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Race the registered policies head-to-head on one trace."
    )
    parser.add_argument(
        "--policies",
        default=",".join(ARENA_POLICIES),
        help="comma-separated policy names (baseline first)",
    )
    parser.add_argument("--seed", type=int, default=ARENA_SEED)
    parser.add_argument(
        "--engine", default=None, help="simulation engine (tick|event)"
    )
    parser.add_argument(
        "--output", default=None, help="write the gate JSON here"
    )
    args = parser.parse_args(argv)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    arena = run_headtohead(policies, seed=args.seed, engine=args.engine)
    print(format_arena(arena))
    text = json.dumps(arena.gate_dict(), indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    return 0


def test_arena_headtohead(benchmark):
    arena = benchmark.pedantic(run_headtohead, rounds=1, iterations=1)

    scores = {entry.policy: entry for entry in arena.scores}
    assert set(scores) == set(ARENA_POLICIES)
    if not smoke_mode():
        # Paper-shape claims (§6.2 / Fig. 11 analogues): every policy
        # drains the trace, and the goodput-aware allocator is at least
        # competitive with plain Optimus on mean JCT.
        assert all(s.finished == s.jobs for s in scores.values())
        assert arena.relative("goodput")["jct_ratio"] < 1.1
        assert all(0.0 < s.jain_fairness <= 1.0 for s in scores.values())

    lines = [
        f"pinned head-to-head, seed={arena.seed}, "
        f"{PAPER_NUM_JOBS} jobs / {PAPER_ARRIVAL_WINDOW:.0f} s window",
        "",
        format_arena(arena),
    ]
    report("arena_headtohead", lines)


if __name__ == "__main__":
    sys.exit(main())
