"""§7 "Convergence estimation" -- learning-rate-drop restart ablation.

The paper: "we can treat the model training after learning rate adjustment
as a new training job and restart online fitting". We fit a job whose loss
curve contains a standard 0.1x learning-rate cut and compare the estimator
with and without the restart heuristic.

Shape to hold: without the restart, the Eqn-1 fit straddles the kink and
grossly over-estimates the remaining epochs; with it, the post-drop phase
is re-fitted and the error collapses.
"""

import numpy as np

from bench_common import report
from repro.core.convergence import ConvergenceEstimator
from repro.workloads import MODEL_ZOO, LossEmitter, with_lr_drops

SPE = 300.0
DROP_EPOCH = 30


def run_comparison():
    base = MODEL_ZOO["seq2seq"].loss
    curve = with_lr_drops(base, [DROP_EPOCH])
    true_total = curve.epochs_to_converge(0.002) * SPE

    def run(reset, seed):
        emitter = LossEmitter(curve, SPE, seed=seed)
        estimator = ConvergenceEstimator(0.002, SPE, reset_on_drop=reset)
        fed = 0
        for end in range(2, 40, 2):
            for obs in emitter.observe_range(fed, int(end * SPE), stride=40):
                estimator.add_observation(obs.step, obs.loss)
            fed = int(end * SPE)
            if estimator.can_fit:
                estimator.fit(force=True)
        predicted = estimator.predicted_total_steps()
        return abs(predicted - true_total) / true_total, estimator.reset_count

    seeds = (4, 5, 6)
    plain = [run(False, s) for s in seeds]
    resetting = [run(True, s) for s in seeds]
    return {
        "true_epochs": true_total / SPE,
        "plain_error": float(np.mean([e for e, _ in plain])),
        "reset_error": float(np.mean([e for e, _ in resetting])),
        "resets": float(np.mean([r for _, r in resetting])),
    }


def test_ablation_lr_drops(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # The restart heuristic fires and at least halves the prediction error.
    assert results["resets"] >= 1
    assert results["reset_error"] < results["plain_error"] * 0.6
    assert results["reset_error"] < 0.5

    lines = [
        "paper §7: restart online fitting after a learning-rate adjustment.",
        f"job: seq2seq-like curve with a LR cut at epoch {DROP_EPOCH}; true",
        f"convergence at epoch {results['true_epochs']:.0f}.",
        "",
        f"plain Eqn-1 fit    : {100*results['plain_error']:6.1f}% error in "
        "predicted total epochs",
        f"with restart (§7)  : {100*results['reset_error']:6.1f}% error "
        f"({results['resets']:.1f} restarts detected)",
    ]
    report("ablation_lr_drops", lines)
