"""Fig. 2 -- single-GPU training time of the Table-1 models.

The paper: "training time varies from minutes (CNN-rand) to weeks
(ResNet-50)". The shape to hold: a several-orders-of-magnitude spread with
CNN-rand at the bottom and ResNet-50 at the top.
"""

from bench_common import report
from repro.common.units import format_duration
from repro.workloads import MODEL_ZOO


def compute_times():
    return {
        name: profile.single_gpu_training_time()
        for name, profile in MODEL_ZOO.items()
    }


def test_fig02_training_time(benchmark):
    times = benchmark.pedantic(compute_times, rounds=1, iterations=1)

    assert min(times, key=times.get) == "cnn-rand"
    assert max(times, key=times.get) == "resnet-50"
    assert times["cnn-rand"] < 600  # minutes
    assert times["resnet-50"] > 5 * 86_400  # approaching weeks
    assert times["resnet-50"] / times["cnn-rand"] > 1_000  # huge spread

    lines = [
        "paper Fig. 2: single-GPU training time spans minutes (CNN-rand) to",
        "weeks (ResNet-50).",
        "",
        f"{'model':14s} {'time':>10s}",
    ]
    for name, seconds in sorted(times.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:14s} {format_duration(seconds):>10s}")
    report("fig02_training_time", lines)
