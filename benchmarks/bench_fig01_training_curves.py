"""Fig. 1 -- training curves of ResNext-110 on CIFAR10.

The paper's Fig. 1 motivates convergence-based job completion: the training
loss decays monotonically and plateaus. We regenerate the loss curve from
the ground-truth generator and check its qualitative features.
"""

import numpy as np

from bench_common import report
from repro.workloads import (
    MODEL_ZOO,
    LossEmitter,
    ValidationEmitter,
    no_overfitting,
)


def build_curve():
    profile = MODEL_ZOO["resnext-110"]
    spe = profile.steps_per_epoch("sync")
    emitter = LossEmitter(profile.loss, spe, seed=1)
    validation = ValidationEmitter(profile.loss, seed=1)
    epochs = np.arange(0, 101)
    losses = [profile.loss.loss(float(e)) for e in epochs]
    noisy = [emitter.observe(int(e * spe)).loss for e in epochs]
    metrics = [validation.observe(int(e)) for e in epochs]
    return profile, epochs, losses, noisy, metrics


def test_fig01_training_curves(benchmark):
    profile, epochs, losses, noisy, metrics = benchmark.pedantic(
        build_curve, rounds=1, iterations=1
    )
    # Monotone decreasing smooth loss with a plateau at the end (Fig 1).
    assert all(a >= b for a, b in zip(losses, losses[1:]))
    assert losses[0] == 1.0
    late_drop = losses[80] - losses[100]
    early_drop = losses[0] - losses[20]
    assert late_drop < 0.05 * early_drop  # plateaued

    # Fig 1's accuracy panel: train/val accuracy rise and saturate, val
    # tracks train from below, and nothing overfits (§2.1).
    assert metrics[-1].train_accuracy > 0.8
    assert metrics[-1].validation_accuracy <= metrics[-1].train_accuracy
    assert metrics[-1].train_accuracy > metrics[5].train_accuracy
    assert no_overfitting(metrics, tolerance=0.05)

    converge = profile.loss.epochs_to_converge(0.002)
    lines = [
        f"model: resnext-110 on CIFAR10 (paper Fig. 1)",
        f"paper: loss decays fast then plateaus, accuracies saturate;",
        f"training stops once per-epoch loss decrease is tiny",
        f"ours : normalised loss 1.00 -> {losses[50]:.3f} (epoch 50) -> "
        f"{losses[100]:.3f} (epoch 100); convergence at epoch {converge}",
        "",
        "epoch  train-loss  val-loss  train-acc  val-acc",
    ]
    for e in range(0, 101, 10):
        m = metrics[e]
        lines.append(
            f"{e:5d}  {m.train_loss:10.3f}  {m.validation_loss:8.3f}  "
            f"{m.train_accuracy:9.3f}  {m.validation_accuracy:7.3f}"
        )
    report("fig01_training_curves", lines)
