"""Control-plane failover: takeover latency and fenced-write accounting.

The HA counterpart of the fault benchmarks: run the hot/standby drill
(:mod:`repro.deploy.failover`) across seeds and kill modes and report the
numbers the CI gate cares about:

* **takeover latency** -- lease-expiry to the successor's first completed
  post-recovery schedule, in step units. The acceptance bound is 2x the
  election lease TTL (``takeover_latency_ttl_ratio`` <= 2.0).
* **fenced writes** -- how many stale-leader mutations the
  :class:`~repro.k8s.election.FencedKVStore` rejected. Under
  ``mid_step_deposed`` (the GC-pause kill) this MUST be positive: a
  deposed leader whose writes land silently is the failure the fence
  exists to prevent.

CI's ``benchmark-failover`` job runs::

    python benchmarks/bench_controlplane_failover.py --output BENCH_failover.json

and gates the report against the committed baseline with
``benchmarks/check_regression.py``.
"""

import argparse
import json
import sys

from bench_common import report
from repro.deploy.failover import FailoverConfig, run_failover_drill
from repro.faults import CRASH_MID_STEP_DEPOSED

SEEDS = (0, 1, 2)
#: Silent leader death plus the deposed-mid-step (GC pause) kill.
KILL_MODES = (None, CRASH_MID_STEP_DEPOSED)
LEASE_TTL = 2.0
KILLS = 2

#: What benchmarks/smoke.py runs (the full matrix is the gate's job).
SMOKE_PRODUCERS = ("run_smoke",)


def run_matrix(seeds=SEEDS, kill_modes=KILL_MODES, kills=KILLS):
    """Run the seed x kill-mode drill matrix; returns per-run outcomes."""
    runs = []
    for seed in seeds:
        for mode in kill_modes:
            config = FailoverConfig(
                seed=seed, crash_point=mode, kills=kills, lease_ttl=LEASE_TTL
            )
            outcome = run_failover_drill(config)
            runs.append(
                {"seed": seed, "crash_point": mode, "outcome": outcome}
            )
    return runs


def run_smoke():
    """One tiny drill per kill mode -- crash/API-drift coverage only."""
    runs = run_matrix(seeds=(0,), kills=1)
    assert all(run["outcome"].ok for run in runs)
    return runs


def build_report(runs):
    latencies = []
    fenced_total = 0
    violations = 0
    for run in runs:
        outcome = run["outcome"]
        latencies.extend(outcome.takeover_latencies)
        fenced_total += outcome.fenced_writes
        if not outcome.ok:
            violations += len(outcome.checker.violations)
    deposed_fenced = sum(
        run["outcome"].fenced_writes
        for run in runs
        if run["crash_point"] == CRASH_MID_STEP_DEPOSED
    )
    worst = max(latencies) if latencies else 0.0
    return {
        "seeds": len({run["seed"] for run in runs}),
        "kill_modes": len({run["crash_point"] for run in runs}),
        "takeovers_total": len(latencies),
        "takeover_latency_steps_mean": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "takeover_latency_steps_max": worst,
        "takeover_latency_ttl_ratio": worst / LEASE_TTL,
        "fenced_writes_total": fenced_total,
        "fenced_writes_mid_step_deposed": deposed_fenced,
        "checker_violations": violations,
    }


def test_controlplane_failover(benchmark):
    runs = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    summary = build_report(runs)

    # Every drill's trace must satisfy the election invariants: no dual
    # leadership, monotone epochs, takeover inside the bound, no leaks.
    assert summary["checker_violations"] == 0
    for run in runs:
        outcome = run["outcome"]
        assert outcome.ok, (run["seed"], run["crash_point"], outcome.checker.violations)
        assert not outcome.leaked_pods
        assert not outcome.leaked_leases
        assert not outcome.leaked_intents

    # The acceptance bound: lease-expiry to first schedule within 2x TTL.
    assert summary["takeover_latency_ttl_ratio"] <= 2.0

    # Every deposed-mid-step leader must have been caught by the fence.
    assert summary["fenced_writes_mid_step_deposed"] > 0

    lines = [
        "hot/standby failover drill, "
        f"{len(SEEDS)} seeds x {len(KILL_MODES)} kill modes x {KILLS} kills",
        f"lease TTL {LEASE_TTL:g} steps; takeover bound 2x TTL",
        "",
        f"{'metric':36s} {'value':>10s}",
        "-" * 48,
    ]
    for key in sorted(summary):
        lines.append(f"{key:36s} {summary[key]:>10.3f}")
    report("bench_controlplane_failover", lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="failover drill matrix -> BENCH_failover.json"
    )
    parser.add_argument("--output", default=None, help="write the report JSON here")
    args = parser.parse_args(argv)
    runs = run_matrix()
    summary = build_report(runs)
    failures = []
    if summary["checker_violations"]:
        failures.append(f"{summary['checker_violations']} checker violations")
    if summary["takeover_latency_ttl_ratio"] > 2.0:
        failures.append(
            f"takeover latency {summary['takeover_latency_steps_max']:g} steps "
            f"exceeds 2x lease TTL"
        )
    if summary["fenced_writes_mid_step_deposed"] <= 0:
        failures.append("no writes were fenced under mid_step_deposed")
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    print(text)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
