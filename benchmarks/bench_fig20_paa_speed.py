"""Fig. 20 -- ResNet-50 training speed vs #ps: PAA vs MXNet default.

Paper: with 10 workers and a growing number of parameter servers
(synchronous training), PAA's balanced assignment beats MXNet's default,
and the gap widens as the number of parameter servers grows (imbalance
compounds with more servers).
"""

from bench_common import report
from repro.ps import blocks_from_sizes, mxnet_partition, paa_partition
from repro.workloads import StepTimeModel, get_profile

PS_COUNTS = (2, 4, 8, 12, 16, 20)
WORKERS = 10


def run_sweep():
    profile = get_profile("resnet-50")
    blocks = blocks_from_sizes(profile.parameter_blocks())
    truth = StepTimeModel(profile, "sync")
    rows = {}
    for p in PS_COUNTS:
        paa = paa_partition(blocks, p).imbalance_factor
        mxnet = mxnet_partition(blocks, p, seed=1).imbalance_factor
        rows[p] = {
            "paa": truth.speed(p, WORKERS, imbalance=paa),
            "mxnet": truth.speed(p, WORKERS, imbalance=mxnet),
        }
    return rows


def test_fig20_paa_speed(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # PAA is at least as fast everywhere.
    for p, row in rows.items():
        assert row["paa"] >= row["mxnet"] * 0.999, p
    # The improvement grows with the number of parameter servers.
    gain_small = rows[2]["paa"] / rows[2]["mxnet"]
    gain_large = rows[20]["paa"] / rows[20]["mxnet"]
    assert gain_large > gain_small
    assert gain_large > 1.05

    lines = [
        "paper Fig. 20: ResNet-50 sync training speed with 10 workers;",
        "PAA beats MXNet's default, especially at many parameter servers.",
        "",
        f"{'#ps':>4s} {'speed PAA':>10s} {'speed MXNet':>12s} {'PAA gain':>9s}",
    ]
    for p, row in rows.items():
        lines.append(
            f"{p:4d} {row['paa']:10.4f} {row['mxnet']:12.4f} "
            f"{100*(row['paa']/row['mxnet'] - 1):8.1f}%"
        )
    report("fig20_paa_speed", lines)
