"""Table 1 -- the nine deep-learning jobs used for tests and experiments.

The zoo's *public* metadata (parameter counts, network types, application
domains, dataset sizes) must match the paper's Table 1 exactly -- these are
facts, not simulated quantities.
"""

from bench_common import report
from repro.workloads import MODEL_ZOO

# (params M, type, examples) straight from the paper's Table 1.
TABLE1 = {
    "resnext-110": (1.7, "CNN", 60_000),
    "resnet-50": (25.0, "CNN", 1_313_788),
    "inception-bn": (11.3, "CNN", 30_607),
    "kaggle-ndsb": (1.4, "CNN", 37_920),
    "cnn-rand": (6.0, "CNN", 10_662),
    "dssm": (1.5, "RNN", 214_288),
    "rnn-lstm": (4.7, "RNN", 1_002_000),
    "seq2seq": (9.1, "RNN", 1_000_000),
    "deepspeech2": (38.0, "RNN", 45_000),
}


def collect_zoo():
    return {
        name: (p.params_million, p.network_type, p.dataset_examples, p.dataset)
        for name, p in MODEL_ZOO.items()
    }


def test_table1_model_zoo(benchmark):
    zoo = benchmark.pedantic(collect_zoo, rounds=1, iterations=1)
    assert set(zoo) == set(TABLE1)
    for name, (params, network, examples) in TABLE1.items():
        got_params, got_network, got_examples, _ = zoo[name]
        assert got_params == params, name
        assert got_network == network, name
        assert got_examples == examples, name

    lines = [
        "paper Table 1, reproduced exactly:",
        "",
        f"{'model':14s} {'params(M)':>9s} {'type':>5s} {'dataset':>22s} "
        f"{'examples':>10s}",
    ]
    for name, (params, network, examples, dataset) in zoo.items():
        lines.append(
            f"{name:14s} {params:9.1f} {network:>5s} {dataset:>22s} "
            f"{examples:10d}"
        )
    report("table1_model_zoo", lines)
