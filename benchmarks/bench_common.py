"""Shared plumbing for the per-figure/per-table benchmarks.

Every bench regenerates one table or figure of the paper's evaluation and

* asserts the *shape* the paper reports (who wins, rough factors,
  crossovers) -- absolute numbers come from our simulator, not the authors'
  testbed, and are not expected to match;
* writes a human-readable paper-vs-measured report under
  ``benchmarks/results/`` (and prints it, visible with ``pytest -s``).

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from typing import Dict, Iterable

from repro.cluster import Cluster, cpu_mem
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, SimulationResult, simulate
from repro.workloads import uniform_arrivals

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: The paper's testbed scale: 13 servers, 9 jobs arriving in [0, 12000] s.
PAPER_NUM_SERVERS = 13
PAPER_NUM_JOBS = 9
PAPER_ARRIVAL_WINDOW = 12_000.0

#: Fast-converging Table-1 models, used when smoke mode shrinks workloads.
SMOKE_MODELS = ["cnn-rand", "dssm", "kaggle-ndsb"]


def smoke_mode() -> bool:
    """True when ``BENCH_SMOKE=1``: shrink every workload to smoke size.

    Smoke runs (CI's benchmark-smoke job, ``benchmarks/smoke.py``) only
    check that each bench still *executes* end to end and produces a
    non-empty result; the paper-shape assertions in the ``test_*``
    wrappers are not expected to hold at smoke scale.
    """
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def paper_cluster() -> Cluster:
    """A 13-server cluster with the standard 16-CPU/80-GB shape."""
    return Cluster.homogeneous(PAPER_NUM_SERVERS, cpu_mem(16, 80))


def paper_workload(seed: int = 42):
    """The §6.1 workload: 9 random Table-1 jobs over a 12 000 s window.

    In smoke mode this shrinks to 3 fast jobs over a 2 000 s window.
    """
    if smoke_mode():
        return uniform_arrivals(
            num_jobs=3, window=2_000.0, seed=seed, models=SMOKE_MODELS
        )
    return uniform_arrivals(
        num_jobs=PAPER_NUM_JOBS, window=PAPER_ARRIVAL_WINDOW, seed=seed
    )


def run_scheduler(
    name: str,
    jobs=None,
    seed: int = 7,
    estimator_mode: str = "online",
    **config_kwargs,
) -> SimulationResult:
    """One simulation of *name* over the paper workload."""
    if jobs is None:
        jobs = paper_workload()
    if smoke_mode():
        config_kwargs.setdefault("max_time", 2 * 86400.0)
    config = SimConfig(seed=seed, estimator_mode=estimator_mode, **config_kwargs)
    return simulate(paper_cluster(), make_scheduler(name), jobs, config)


def report(name: str, lines: Iterable[str]) -> str:
    """Print a bench report and persist it under ``benchmarks/results/``."""
    text = "\n".join(["=" * 72, name, "=" * 72, *lines, ""])
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def normalised_row(results: Dict[str, SimulationResult]) -> Dict[str, Dict[str, float]]:
    """JCT/makespan of each scheduler relative to Optimus (Fig-11 style)."""
    base_jct = results["optimus"].average_jct
    base_mk = results["optimus"].makespan
    return {
        name: {
            "jct": result.average_jct / base_jct,
            "makespan": result.makespan / base_mk,
        }
        for name, result in results.items()
    }
