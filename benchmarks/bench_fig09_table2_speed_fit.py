"""Fig. 9 + Table 2 -- fitted speed functions for sync and async training.

Fig. 9: the fitted Eqn-3/Eqn-4 curves closely track measured speeds across
(p, w); returns diminish when adding tasks; synchronous speed can decrease
with more workers.

Table 2: fitted coefficients -- the terms for forward/backward propagation
and data transfer dominate (θ0/θ1/θ2 large relative to the overhead
coefficients), and the residual sum of squares is small.
"""

import numpy as np

from bench_common import report
from repro.fitting import fit_speed_model
from repro.workloads import MODEL_ZOO, StepTimeModel


def fit_both_modes():
    """Fit each mode on a profiled grid from a 40-container cluster run."""
    out = {}
    for mode in ("sync", "async"):
        truth = StepTimeModel(MODEL_ZOO["resnet-50"], mode)
        samples = [
            (p, w, truth.measured_speed(p, w, seed=p * 53 + w, noise_std=0.02))
            for p in range(1, 21, 2)
            for w in range(1, 21, 2)
        ]
        fit = fit_speed_model(
            samples, mode, global_batch=256 if mode == "sync" else None
        )
        errors = [
            abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
            for p in range(2, 20, 3)
            for w in range(2, 20, 3)
        ]
        out[mode] = (truth, fit, float(np.mean(errors)))
    return out


def test_fig09_table2_speed_fit(benchmark):
    fits = benchmark.pedantic(fit_both_modes, rounds=1, iterations=1)

    for mode, (truth, fit, mean_error) in fits.items():
        # Fig 9 observation (a): the fit closely describes the surface.
        assert mean_error < 0.08, mode
        # Fig 9 observation (b): diminishing returns in ps at fixed w.
        gain_low = fit.predict(8, 12) - fit.predict(4, 12)
        gain_high = fit.predict(20, 12) - fit.predict(16, 12)
        assert gain_high < gain_low

    # Fig 9 observation (c): sync speed declines at large worker counts.
    sync_fit = fits["sync"][1]
    sync_speeds = {w: sync_fit.predict(w, w) for w in range(1, 21)}
    best = max(sync_speeds, key=sync_speeds.get)
    assert sync_speeds[20] < sync_speeds[best]

    # Table 2: compute+transfer coefficients dominate the overhead terms.
    sync_thetas = fits["sync"][1].thetas  # (fwd, back, transfer, w-ovh, p-ovh)
    assert sync_thetas[0] * 256 > sync_thetas[4]  # forward >> ps overhead
    assert sync_thetas[2] > sync_thetas[4]  # transfer >> ps overhead
    async_thetas = fits["async"][1].thetas

    lines = [
        "paper Table 2 (ResNet-50 speed-function coefficients):",
        "  async: θ0=2.83 θ1=3.92 θ2=0.00 θ3=0.11 (RSS 0.10)",
        "  sync : θ0=1.02 θ1=2.78 θ2=4.92 θ3=0.00 θ4=0.02 (RSS 0.00)",
        "ours (different absolute time scale; same dominance structure):",
        "  async: "
        + " ".join(f"θ{i}={t:.3g}" for i, t in enumerate(async_thetas))
        + f" (RSS {fits['async'][1].residual:.3g})",
        "  sync : "
        + " ".join(f"θ{i}={t:.3g}" for i, t in enumerate(sync_thetas))
        + f" (RSS {fits['sync'][1].residual:.3g})",
        "",
        f"mean fit error: sync {100*fits['sync'][2]:.1f}%, "
        f"async {100*fits['async'][2]:.1f}%",
        f"sync fitted 1:1 peak at w={best}; speed(20) "
        f"{sync_speeds[20]:.3f} < peak {sync_speeds[best]:.3f}",
    ]
    report("fig09_table2_speed_fit", lines)
