"""Internal validation -- Eqn 2 against a first-principles micro-simulation.

Not a paper figure: this bench substantiates the reproduction itself. The
whole evaluation rests on the Eqn-2 step-time model; here one synchronous
training step is re-derived by an event-driven fluid simulation of the PS
architecture (max-min fair network flows, per-shard updates) and compared
against the closed form across configurations, including §5.3's shard
imbalance.
"""

import numpy as np

from bench_common import report
from repro.ps.microsim import (
    MicroStepConfig,
    closed_form_step_time,
    simulate_step,
)

CONFIGS = [(4, 2), (8, 4), (8, 8), (12, 6), (16, 8), (20, 10)]


def run_validation():
    rows = []
    for w, p in CONFIGS:
        config = MicroStepConfig(
            num_workers=w,
            shard_bytes=tuple(100e6 / p for _ in range(p)),
            bandwidth=125e6,
            compute_time=2.0,
            update_time_full=0.05,
        )
        micro = simulate_step(config).step_time
        closed = closed_form_step_time(config)
        rows.append((w, p, micro, closed, abs(micro - closed) / closed))

    # Imbalanced shards: rho_max = 0.5 over 4 servers.
    uneven = MicroStepConfig(
        num_workers=8,
        shard_bytes=(50e6, 25e6, 12.5e6, 12.5e6),
        bandwidth=125e6,
        compute_time=2.0,
        update_time_full=0.05,
    )
    rows.append(
        (
            8,
            4,
            simulate_step(uneven).step_time,
            closed_form_step_time(uneven),
            abs(
                simulate_step(uneven).step_time
                - closed_form_step_time(uneven)
            )
            / closed_form_step_time(uneven),
        )
    )
    return rows


def test_validation_eqn2(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    errors = [err for *_, err in rows]
    assert max(errors) < 0.10  # closed form within 10% everywhere
    assert float(np.mean(errors)) < 0.05

    lines = [
        "Eqn 2 (closed form) vs event-driven fluid simulation of one sync",
        "step (ResNet-50-sized model, 1 GbE): the analytic ground truth the",
        "evaluation uses is accurate in the paper's PS-bottleneck regime.",
        "",
        f"{'w':>3s} {'p':>3s} {'micro (s)':>10s} {'Eqn2 (s)':>9s} {'error':>7s}",
    ]
    for w, p, micro, closed, err in rows:
        lines.append(f"{w:3d} {p:3d} {micro:10.3f} {closed:9.3f} {100*err:6.1f}%")
    lines.append("")
    lines.append("(last row: imbalanced shards, rho_max = 0.5 -- the §5.3 form)")
    report("validation_eqn2", lines)
