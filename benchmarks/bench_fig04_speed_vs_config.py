"""Fig. 4 -- training speed of ResNet-50 under different (ps, worker) splits.

(a) 20 containers split between ps and workers: an interior optimum near
    8 workers / 12 ps; both extremes much slower.
(b) ps:workers fixed at 1:1: speed rises, peaks, then *declines* -- more
    resources can slow training down.
"""

from bench_common import report
from repro.workloads import MODEL_ZOO, StepTimeModel


def sweep():
    model = StepTimeModel(MODEL_ZOO["resnet-50"], "sync")
    fixed_total = {w: model.speed(20 - w, w) for w in range(1, 20)}
    one_to_one = {w: model.speed(w, w) for w in range(1, 21)}
    return fixed_total, one_to_one


def test_fig04_speed_vs_config(benchmark):
    fixed_total, one_to_one = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # (a) interior optimum near w=8 (paper: exactly 8 workers / 12 ps).
    best_a = max(fixed_total, key=fixed_total.get)
    assert 5 <= best_a <= 11
    assert fixed_total[1] < 0.7 * fixed_total[best_a]
    assert fixed_total[19] < 0.7 * fixed_total[best_a]

    # (b) non-monotone: the curve declines past its peak.
    best_b = max(one_to_one, key=one_to_one.get)
    assert best_b < 20
    assert one_to_one[20] < one_to_one[best_b]

    lines = [
        "paper Fig. 4(a): 20 containers, max speed at 8 workers + 12 ps",
        f"ours          : max speed at {best_a} workers + {20 - best_a} ps",
        "",
        "   w   speed(20-w ps)   speed(1:1)",
    ]
    for w in range(1, 20):
        lines.append(
            f"{w:4d}   {fixed_total[w]:14.4f}   {one_to_one[w]:10.4f}"
        )
    lines += [
        "",
        "paper Fig. 4(b): 1:1 speed peaks then declines (more resources can",
        f"slow training); ours peaks at w={best_b}, "
        f"speed(20)={one_to_one[20]:.4f} < peak {one_to_one[best_b]:.4f}",
    ]
    report("fig04_speed_vs_config", lines)
