"""Fig. 16 -- sensitivity to training modes (all-async vs all-sync).

Paper: Optimus outperforms DRF and Tetris in both pure modes, and its gain
is larger when every job trains synchronously (convergence and speed are
easier to estimate, and sync over-parallelisation is costlier to get wrong).
"""

from bench_common import normalised_row, report, run_scheduler
from repro.workloads import uniform_arrivals

SCHEDULERS = ("optimus", "drf", "tetris")


def run_modes():
    out = {}
    for mode in ("async", "sync"):
        jobs = uniform_arrivals(num_jobs=9, window=12_000, seed=42, mode=mode)
        out[mode] = {
            name: run_scheduler(name, jobs=jobs, seed=7) for name in SCHEDULERS
        }
    return out


def test_fig16_training_modes(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    norms = {mode: normalised_row(res) for mode, res in results.items()}
    for mode in ("async", "sync"):
        for baseline in ("drf", "tetris"):
            assert norms[mode][baseline]["jct"] > 1.0, (mode, baseline)

    lines = [
        "paper Fig. 16: Optimus wins under both pure training modes",
        "(paper normalised JCT: async drf=1.97, tetris=1.36;",
        " sync drf=2.53, tetris=1.91).",
        "",
    ]
    for mode in ("async", "sync"):
        lines.append(f"-- all jobs {mode} --")
        lines.append(
            f"{'scheduler':10s} {'JCT(h)':>8s} {'norm':>6s} "
            f"{'makespan(h)':>12s} {'norm':>6s}"
        )
        for name in SCHEDULERS:
            result = results[mode][name]
            lines.append(
                f"{name:10s} {result.average_jct/3600:8.2f} "
                f"{norms[mode][name]['jct']:6.2f} "
                f"{result.makespan/3600:12.2f} "
                f"{norms[mode][name]['makespan']:6.2f}"
            )
        lines.append("")
    report("fig16_training_modes", lines)
