"""§1/§7 -- harvesting idle capacity under a time-varying background load.

The paper's opening motivation: with static schedulers, "jobs already
running in the cluster cannot benefit from extra resources when they become
available (e.g., during night time)". Optimus's whole point is that it can.

We share the cluster with a step-shaped background load that releases
capacity mid-experiment and compare Optimus with static-FIFO: Optimus must
(a) beat FIFO under the varying load and (b) visibly grow its task count
when capacity frees up.
"""

from bench_common import report
from repro.cluster import Cluster, cpu_mem
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate, step_load
from repro.workloads import uniform_arrivals

#: Heavy background for the first 2 hours, then it recedes.
RELEASE_TIME = 7_200.0
LOAD = step_load([(0.0, 0.6), (RELEASE_TIME, 0.05)])


def run_pair():
    jobs = uniform_arrivals(
        num_jobs=6,
        window=1_800,
        seed=21,
        models=["seq2seq", "inception-bn", "rnn-lstm", "deepspeech2"],
    )
    out = {}
    for name in ("optimus", "fifo"):
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        config = SimConfig(seed=7, background_load=LOAD)
        out[name] = simulate(cluster, make_scheduler(name), jobs, config)
    return out


def test_ablation_background_load(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    optimus = results["optimus"]
    fifo = results["fifo"]
    assert optimus.all_finished

    # (a) dynamic scaling beats static allocations under varying load.
    assert optimus.average_jct < fifo.average_jct
    assert optimus.makespan <= fifo.makespan * 1.05

    # (b) Optimus ramps up once the background recedes.
    before = [s.running_tasks for s in optimus.timeline if s.time < RELEASE_TIME]
    after = [s.running_tasks for s in optimus.timeline if s.time >= RELEASE_TIME]
    if before and after:
        assert max(after) > max(before)

    lines = [
        "paper §1 motivation: static jobs cannot use capacity freed by other",
        "workloads; Optimus rescales into it.",
        f"background: 60% of every server until t={RELEASE_TIME:.0f}s, then 5%.",
        "",
        f"{'scheduler':10s} {'JCT(h)':>8s} {'makespan(h)':>12s} "
        f"{'peak tasks pre/post release':>28s}",
    ]
    for name, result in results.items():
        before = [s.running_tasks for s in result.timeline if s.time < RELEASE_TIME]
        after = [s.running_tasks for s in result.timeline if s.time >= RELEASE_TIME]
        lines.append(
            f"{name:10s} {result.average_jct/3600:8.2f} "
            f"{result.makespan/3600:12.2f} "
            f"{max(before, default=0):14d} / {max(after, default=0):d}"
        )
    report("ablation_background_load", lines)
