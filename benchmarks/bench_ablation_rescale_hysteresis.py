"""§7 "Scaling overhead" -- cost-aware rescaling ablation.

The paper proposes limiting checkpoint-based restarts for jobs where
rescaling is expensive. Our implementation is hysteresis: a running job
only changes configuration when the estimated completion-time saving
exceeds ``threshold x`` its checkpoint cost.

Shape to hold: raising the threshold monotonically reduces the number of
rescalings (and hence total scaling time) while keeping JCT close to the
eager baseline.
"""


from bench_common import paper_workload, report
from repro.cluster import Cluster, cpu_mem
from repro.schedulers import OptimusScheduler
from repro.sim import SimConfig, simulate

THRESHOLDS = (0.0, 1.0, 3.0, 10.0)


def run_sweep():
    jobs = paper_workload(seed=42)
    out = {}
    for threshold in THRESHOLDS:
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        result = simulate(
            cluster,
            OptimusScheduler(rescale_threshold=threshold),
            jobs,
            SimConfig(seed=7),
        )
        out[threshold] = result
    return out


def test_ablation_rescale_hysteresis(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    scalings = {
        t: sum(r.num_scalings for r in res.jobs.values())
        for t, res in results.items()
    }
    jcts = {t: res.average_jct for t, res in results.items()}

    # More hysteresis, fewer restarts.
    assert scalings[10.0] < scalings[0.0]
    assert scalings[1.0] <= scalings[0.0]
    # Modest thresholds keep JCT competitive with the eager baseline.
    assert jcts[1.0] < jcts[0.0] * 1.15

    lines = [
        "paper §7: limit restarting frequency to control the checkpoint",
        "overhead of elastic scaling (paper's measured overhead: 2.54% of",
        "makespan).",
        "",
        f"{'threshold':>10s} {'rescalings':>11s} {'scaling time':>13s} "
        f"{'JCT(h)':>8s} {'norm':>6s}",
    ]
    base = jcts[0.0]
    for t in THRESHOLDS:
        result = results[t]
        lines.append(
            f"{t:10.1f} {scalings[t]:11d} "
            f"{result.total_scaling_time:11.0f} s "
            f"{result.average_jct/3600:8.2f} {jcts[t]/base:6.2f}"
        )
    report("ablation_rescale_hysteresis", lines)
