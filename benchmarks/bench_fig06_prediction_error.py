"""Fig. 6 -- convergence-prediction error vs training progress.

The paper: prediction errors are large (up to tens of percent) early in
training and shrink towards zero as more loss data accumulates. We replay
the online estimator over each model's ground-truth loss stream and measure
the signed error of the predicted total epochs at several progress points.
"""

import numpy as np

from bench_common import report
from repro.core.convergence import ConvergenceEstimator
from repro.workloads import MODEL_ZOO, LossEmitter

PROGRESS_POINTS = (0.2, 0.4, 0.6, 0.8, 1.0)


def prediction_errors():
    errors = {}
    for name, profile in MODEL_ZOO.items():
        spe = profile.steps_per_epoch("sync")
        true_epochs = profile.loss.epochs_to_converge(0.002)
        true_steps = true_epochs * spe
        emitter = LossEmitter(profile.loss, spe, seed=9)
        estimator = ConvergenceEstimator(threshold=0.002, steps_per_epoch=spe)
        stride = max(1, int(true_steps / 300))
        per_model = []
        fed = 0
        for progress in PROGRESS_POINTS:
            upto = int(true_steps * progress)
            for obs in emitter.observe_range(fed, upto, stride):
                estimator.add_observation(obs.step, obs.loss)
            fed = upto
            estimator.fit(force=True)
            predicted = estimator.predicted_total_steps()
            per_model.append((predicted - true_steps) / true_steps)
        errors[name] = per_model
    return errors


def test_fig06_prediction_error(benchmark):
    errors = benchmark.pedantic(prediction_errors, rounds=1, iterations=1)

    finals = [abs(e[-1]) for e in errors.values()]
    earlies = [abs(e[0]) for e in errors.values()]
    # Late errors are small on average and smaller than early errors.
    assert float(np.mean(finals)) < 0.20
    assert float(np.mean(finals)) < float(np.mean(earlies))
    # Every model's final prediction is within 35%.
    assert max(finals) < 0.35

    lines = [
        "paper Fig. 6: prediction error (predicted vs actual total epochs)",
        "is large early and approaches 0 with progress.",
        "",
        f"{'model':14s}" + "".join(f"  {int(p*100):3d}%" for p in PROGRESS_POINTS),
    ]
    for name, per_model in errors.items():
        lines.append(
            f"{name:14s}" + "".join(f" {100*e:+5.0f}" for e in per_model)
        )
    lines.append("")
    lines.append(
        f"mean |error| early {100*float(np.mean(earlies)):.1f}% -> "
        f"final {100*float(np.mean(finals)):.1f}%"
    )
    report("fig06_prediction_error", lines)
