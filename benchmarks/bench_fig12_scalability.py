"""Fig. 12 -- scheduling time vs cluster size and job count.

Paper: Optimus schedules 4,000 jobs (~100,000 tasks) on 16,000 nodes within
5 seconds on one CPU core, and scheduling time grows with both the node
count and the job count.

This bench has two parts:

* :func:`schedule_once` / :func:`run_sweep` time one full scheduling round
  -- §4.1 allocation plus §4.2 placement -- at several scales. Task counts
  per job are capped at 28, so the largest point handles ~50k tasks; the
  paper's 100k-task point used a ps:worker grid we cap lower to keep the
  bench under a minute.
* :func:`run_scale_scenario` runs a *full simulation* on the event-driven
  engine at datacenter scale (thousands of GPUs, thousands of jobs) and
  writes a ``BENCH_scale.json`` report that CI's ``benchmark-scale`` job
  gates against a committed baseline. Run it directly::

      python benchmarks/bench_fig12_scalability.py --gpus 1000 --jobs 2000 \\
          --output BENCH_scale.json
"""

import argparse
import json
import sys
import time

from bench_common import report
from repro.cluster import Cluster, cpu_mem
from repro.cluster.resources import ResourceVector
from repro.core.allocation import AllocationRequest, allocate
from repro.core.placement import PlacementRequest, place_jobs

#: What benchmarks/smoke.py runs at smoke scale (NOT the scale scenario).
SMOKE_PRODUCERS = ("run_sweep",)

SCALES = (
    (1_000, 250),
    (2_000, 500),
    (4_000, 1_000),
    (8_000, 2_000),
    (16_000, 4_000),
)

DEMAND = cpu_mem(5, 10)


def _speed(p, w):
    # A fitted-function stand-in (Eqn-3 form with typical coefficients).
    return w / (2.0 + 3.0 * w / p + 0.02 * w + 0.01 * p)


def schedule_once(num_nodes, num_jobs):
    capacity = ResourceVector({"cpu": 16 * num_nodes, "memory": 80 * num_nodes})
    requests = [
        AllocationRequest(
            job_id=f"j{i}",
            remaining_work=1e5 * (1 + i % 7),
            speed=_speed,
            worker_demand=DEMAND,
            ps_demand=DEMAND,
            max_workers=14,
            max_ps=14,
        )
        for i in range(num_jobs)
    ]
    start = time.perf_counter()
    allocation = allocate(requests, capacity)
    cluster = Cluster.homogeneous(num_nodes, cpu_mem(16, 80))
    placement_requests = [
        PlacementRequest(j, a.workers, a.ps, DEMAND, DEMAND)
        for j, a in allocation.allocations.items()
    ]
    placement = place_jobs(cluster, placement_requests)
    elapsed = time.perf_counter() - start
    tasks = sum(a.total for a in allocation.allocations.values())
    return elapsed, tasks, len(placement.layouts)


def run_sweep():
    return {
        (nodes, jobs): schedule_once(nodes, jobs) for nodes, jobs in SCALES
    }


# -- full-simulation scale scenario (event engine) ---------------------------

GPUS_PER_NODE = 4
NODE_SHAPE = ResourceVector({"cpu": 16, "memory": 80, "gpu": GPUS_PER_NODE})
SCALE_WORKER_DEMAND = ResourceVector({"cpu": 2, "memory": 4, "gpu": 1})
SCALE_PS_DEMAND = ResourceVector({"cpu": 1, "memory": 2})
#: Fast-converging Table-1 models, so the scenario measures the scheduler
#: and engine rather than week-long training tails.
SCALE_MODELS = ("cnn-rand", "dssm", "kaggle-ndsb")


def build_scale_workload(num_jobs, window):
    """GPU-denominated jobs with deterministic, evenly spread arrivals."""
    from repro.workloads import make_job

    jobs = []
    for i in range(num_jobs):
        jobs.append(
            make_job(
                SCALE_MODELS[i % len(SCALE_MODELS)],
                mode="async" if i % 2 else "sync",
                job_id=f"scale-{i}",
                arrival_time=(i * window) / num_jobs,
                worker_demand=SCALE_WORKER_DEMAND,
                ps_demand=SCALE_PS_DEMAND,
            )
        )
    return jobs


def run_scale_scenario(num_gpus=5_000, num_jobs=10_000, seed=0):
    """Simulate *num_jobs* jobs on a *num_gpus*-GPU cluster, end to end.

    Runs the event-driven engine with oracle estimators (so loss-curve
    fitting does not drown out the engine/allocator/placement cost being
    measured) and the placement cache on. Returns the ``BENCH_scale.json``
    report dict; every numeric field is regression-gated by CI through
    ``benchmarks/check_regression.py``.
    """
    from repro.obs import MetricsRegistry
    from repro.schedulers import make_scheduler
    from repro.sim import SimConfig, simulate

    nodes = max(1, num_gpus // GPUS_PER_NODE)
    # Arrival window sized so the offered load roughly matches the drain
    # rate; the whole trace then plays out in a few dozen intervals.
    window = num_jobs * 6_000.0 / max(num_gpus, 1)
    # The sampled decision ledger rides along at fleet scale: its event
    # payloads go to the null tracer here, but the per-round top-K
    # bookkeeping and denial/placement counters run at full rate, so any
    # ledger cost that scales with grants shows up in the gated keys.
    config = SimConfig(
        seed=seed,
        estimator_mode="oracle",
        max_time=window + 2 * 86_400.0,
        ledger_mode="sampled",
    )
    workload = build_scale_workload(num_jobs, window)
    registry = MetricsRegistry()
    # Cost-aware rescaling (§7) keeps allocations stable between intervals,
    # which is what lets the placement cache replay layouts.
    scheduler = make_scheduler(
        "optimus", placement_cache=True, rescale_threshold=1.0
    )
    start = time.perf_counter()
    result = simulate(
        Cluster.homogeneous(nodes, NODE_SHAPE),
        scheduler,
        workload,
        config,
        metrics=registry,
        engine="event",
    )
    wall = time.perf_counter() - start

    counters = registry.snapshot()["counters"]
    events = counters.get("sim.events_processed", 0.0)
    cache = scheduler.placement_cache
    return {
        "gpus": num_gpus,
        "jobs": num_jobs,
        "wall_seconds": round(wall, 4),
        "events_processed": int(events),
        "events_per_second": round(events / wall, 2) if wall > 0 else 0.0,
        "schedule_events": int(counters.get("sim.events_schedule", 0.0)),
        "jobs_completed": int(counters.get("engine.jobs_completed", 0.0)),
        "allocate_p95_ms": round(
            1000.0 * registry.histogram("phase.allocate").quantile(0.95), 4
        ),
        "place_p95_ms": round(
            1000.0 * registry.histogram("phase.place").quantile(0.95), 4
        ),
        "placement_cache_hits": int(cache.hits if cache else 0),
        "average_jct_seconds": round(result.average_jct, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the full-simulation scale scenario (event engine)."
    )
    parser.add_argument("--gpus", type=int, default=5_000)
    parser.add_argument("--jobs", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", default=None, help="write the report JSON here"
    )
    args = parser.parse_args(argv)
    scale_report = run_scale_scenario(args.gpus, args.jobs, seed=args.seed)
    text = json.dumps(scale_report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    return 0


def test_fig12_scalability(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    largest = results[(16_000, 4_000)]
    # Paper's headline point: a few seconds for thousands of jobs on a
    # 16k-node cluster.
    assert largest[0] < 30.0
    assert largest[1] > 40_000  # tens of thousands of tasks handled
    # Scheduling time grows with scale.
    assert results[(16_000, 4_000)][0] > results[(1_000, 250)][0]

    lines = [
        "paper Fig. 12: 4,000 jobs (~100k tasks) on 16,000 nodes scheduled",
        "within 5 s (1 core); time grows with nodes and jobs.",
        "",
        f"{'nodes':>7s} {'jobs':>6s} {'tasks':>7s} {'placed':>7s} {'time':>8s}",
    ]
    for (nodes, jobs), (elapsed, tasks, placed) in results.items():
        lines.append(
            f"{nodes:7d} {jobs:6d} {tasks:7d} {placed:7d} {elapsed:7.2f}s"
        )
    report("fig12_scalability", lines)


if __name__ == "__main__":
    sys.exit(main())
