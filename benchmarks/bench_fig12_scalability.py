"""Fig. 12 -- scheduling time vs cluster size and job count.

Paper: Optimus schedules 4,000 jobs (~100,000 tasks) on 16,000 nodes within
5 seconds on one CPU core, and scheduling time grows with both the node
count and the job count.

This bench times one full scheduling round -- §4.1 allocation plus §4.2
placement -- at several scales. Task counts per job are capped at 28, so
the largest point handles ~50k tasks; the paper's 100k-task point used a
ps:worker grid we cap lower to keep the bench under a minute.
"""

import time

from bench_common import report
from repro.cluster import Cluster, cpu_mem
from repro.cluster.resources import ResourceVector
from repro.core.allocation import AllocationRequest, allocate
from repro.core.placement import PlacementRequest, place_jobs

SCALES = (
    (1_000, 250),
    (2_000, 500),
    (4_000, 1_000),
    (8_000, 2_000),
    (16_000, 4_000),
)

DEMAND = cpu_mem(5, 10)


def _speed(p, w):
    # A fitted-function stand-in (Eqn-3 form with typical coefficients).
    return w / (2.0 + 3.0 * w / p + 0.02 * w + 0.01 * p)


def schedule_once(num_nodes, num_jobs):
    capacity = ResourceVector({"cpu": 16 * num_nodes, "memory": 80 * num_nodes})
    requests = [
        AllocationRequest(
            job_id=f"j{i}",
            remaining_work=1e5 * (1 + i % 7),
            speed=_speed,
            worker_demand=DEMAND,
            ps_demand=DEMAND,
            max_workers=14,
            max_ps=14,
        )
        for i in range(num_jobs)
    ]
    start = time.perf_counter()
    allocation = allocate(requests, capacity)
    cluster = Cluster.homogeneous(num_nodes, cpu_mem(16, 80))
    placement_requests = [
        PlacementRequest(j, a.workers, a.ps, DEMAND, DEMAND)
        for j, a in allocation.allocations.items()
    ]
    placement = place_jobs(cluster, placement_requests)
    elapsed = time.perf_counter() - start
    tasks = sum(a.total for a in allocation.allocations.values())
    return elapsed, tasks, len(placement.layouts)


def run_sweep():
    return {
        (nodes, jobs): schedule_once(nodes, jobs) for nodes, jobs in SCALES
    }


def test_fig12_scalability(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    largest = results[(16_000, 4_000)]
    # Paper's headline point: a few seconds for thousands of jobs on a
    # 16k-node cluster.
    assert largest[0] < 30.0
    assert largest[1] > 40_000  # tens of thousands of tasks handled
    # Scheduling time grows with scale.
    assert results[(16_000, 4_000)][0] > results[(1_000, 250)][0]

    lines = [
        "paper Fig. 12: 4,000 jobs (~100k tasks) on 16,000 nodes scheduled",
        "within 5 s (1 core); time grows with nodes and jobs.",
        "",
        f"{'nodes':>7s} {'jobs':>6s} {'tasks':>7s} {'placed':>7s} {'time':>8s}",
    ]
    for (nodes, jobs), (elapsed, tasks, placed) in results.items():
        lines.append(
            f"{nodes:7d} {jobs:6d} {tasks:7d} {placed:7d} {elapsed:7.2f}s"
        )
    report("fig12_scalability", lines)
