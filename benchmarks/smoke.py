"""Benchmark smoke runner: execute every bench at tiny scale.

CI's benchmark-smoke job runs this script. For each ``bench_*.py`` module
it imports the module, locates its producer -- the zero-argument
module-level function the ``test_*`` wrapper feeds to
``benchmark.pedantic`` -- runs it with smoke-sized parameters
(``BENCH_SMOKE=1``, see :func:`bench_common.smoke_mode`, plus per-module
constant overrides below) and asserts the result is non-empty. The
paper-shape assertions in the ``test_*`` wrappers are deliberately *not*
evaluated: at smoke scale they are not expected to hold. The goal is to
catch API drift and crashes in every bench quickly, not to validate the
paper's numbers.

Besides smoking every bench, the runner times one instrumented
standard-scale simulation and writes ``BENCH_smoke.json`` at the repo
root: interval-loop wall time, allocate/place p95 latencies and the sim's
average JCT. CI diffs that file against the committed baseline with
``benchmarks/check_regression.py``.

Usage::

    python benchmarks/smoke.py            # run all benches + write report
    python benchmarks/smoke.py fig12      # run benches matching a substring
    python benchmarks/smoke.py --report-only   # only write BENCH_smoke.json
"""

from __future__ import annotations

import glob
import importlib
import inspect
import json
import os
import sys
import time

os.environ.setdefault("BENCH_SMOKE", "1")

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, BENCH_DIR)
sys.path.insert(0, os.path.join(os.path.dirname(BENCH_DIR), "src"))

#: Tiny-scale overrides applied to module-level constants before running
#: (the big sweeps would otherwise dominate the smoke run's wall clock).
SMOKE_OVERRIDES = {
    "bench_fig12_scalability": {"SCALES": ((50, 10), (100, 25))},
    "bench_fig15_sensitivity_error": {"ERROR_LEVELS": (0.0, 0.3)},
    "bench_faults_jct_degradation": {
        "SCHEDULERS": ("optimus",),
        "MTBF_LEVELS": (0.0, 5_000.0),
    },
}


def find_producer(module):
    """The bench's zero-arg producer function (what pedantic would call).

    A module can opt out of discovery by naming its producers explicitly
    in a ``SMOKE_PRODUCERS`` tuple -- needed when it also exposes zero-arg
    entry points that must NOT run at smoke time (e.g. the full-scale
    scenario runner in ``bench_fig12_scalability``).
    """
    explicit = getattr(module, "SMOKE_PRODUCERS", None)
    if explicit is not None:
        return [getattr(module, name) for name in explicit]
    candidates = []
    for name, obj in vars(module).items():
        if name.startswith(("test_", "_")) or not inspect.isfunction(obj):
            continue
        if obj.__module__ != module.__name__:
            continue  # imported helper, not this bench's producer
        parameters = inspect.signature(obj).parameters.values()
        if all(
            p.default is not inspect.Parameter.empty
            or p.kind
            in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
            for p in parameters
        ):
            candidates.append(obj)
    return candidates


def is_non_empty(result) -> bool:
    """A smoke result must be something: not None, not an empty container."""
    if result is None:
        return False
    if isinstance(result, (list, tuple, dict, set, str)):
        values = result.values() if isinstance(result, dict) else result
        return len(result) > 0 and all(item is not None for item in values)
    return True


def run_bench(module_name: str) -> float:
    """Import one bench, apply overrides, run its producers; returns seconds."""
    module = importlib.import_module(module_name)
    for attr, value in SMOKE_OVERRIDES.get(module_name, {}).items():
        setattr(module, attr, value)
    producers = find_producer(module)
    if not producers:
        raise AssertionError(f"{module_name}: no zero-arg producer function found")
    start = time.perf_counter()
    for producer in producers:
        result = producer()
        if not is_non_empty(result):
            raise AssertionError(
                f"{module_name}.{producer.__name__} returned an empty result: "
                f"{result!r}"
            )
    return time.perf_counter() - start


#: Where the smoke report lands (the repo root, next to pyproject.toml).
REPORT_PATH = os.path.join(os.path.dirname(BENCH_DIR), "BENCH_smoke.json")


def write_smoke_report(path: str = REPORT_PATH) -> dict:
    """Time one instrumented standard-scale sim and write the report JSON.

    The workload matches the repo's standard 9-job / 13-server scenario,
    run with a live metrics registry so the per-phase histograms exist;
    allocate/place p95s come straight from them.

    The same scenario is then re-run twice with a tracer attached --
    once with the decision ledger off, once in ``full`` mode;
    ``ledger_overhead_ratio`` (full / off wall time, both traced)
    isolates the cost of the PR-10 decision ledger from tracing itself
    and gates it against the committed baseline.
    """
    from repro.cluster import Cluster, cpu_mem
    from repro.obs import MetricsRegistry, RecordingTracer
    from repro.schedulers import make_scheduler
    from repro.sim import SimConfig, simulate
    from repro.workloads import uniform_arrivals

    def run_once(tracer=None, **cfg):
        registry = MetricsRegistry()
        start = time.perf_counter()
        result = simulate(
            Cluster.homogeneous(13, cpu_mem(16, 80)),
            make_scheduler("optimus"),
            uniform_arrivals(num_jobs=9, window=12_000, seed=0),
            SimConfig(seed=0, **cfg),
            tracer=tracer,
            metrics=registry,
        )
        return result, registry, time.perf_counter() - start

    result, registry, elapsed = run_once()
    _, _, elapsed_off = run_once(tracer=RecordingTracer(), ledger_mode="off")
    _, _, elapsed_full = run_once(
        tracer=RecordingTracer(), ledger_mode="full"
    )
    snapshot = registry.snapshot()
    intervals = int(snapshot["counters"].get("engine.intervals", 0))
    report = {
        "interval_loop_seconds": round(elapsed, 4),
        "intervals": intervals,
        "allocate_p95_ms": round(
            1000.0 * registry.histogram("phase.allocate").quantile(0.95), 4
        ),
        "place_p95_ms": round(
            1000.0 * registry.histogram("phase.place").quantile(0.95), 4
        ),
        "average_jct_seconds": round(result.summary()["average_jct"], 2),
        "ledger_overhead_ratio": round(elapsed_full / elapsed_off, 4),
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}: {json.dumps(report, sort_keys=True)}")
    return report


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--report-only":
        write_smoke_report()
        return 0
    pattern = argv[0] if argv else ""
    paths = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    names = [
        os.path.splitext(os.path.basename(path))[0]
        for path in paths
        if os.path.basename(path) != "bench_common.py"
    ]
    if pattern:
        names = [name for name in names if pattern in name]
    if not names:
        print(f"no benches match {pattern!r}", file=sys.stderr)
        return 2

    failures = []
    for name in names:
        try:
            elapsed = run_bench(name)
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures.append((name, exc))
            print(f"FAIL  {name}: {exc}")
        else:
            print(f"ok    {name} ({elapsed:.2f}s)")
    print(
        f"\n{len(names) - len(failures)}/{len(names)} benches passed smoke"
    )
    if not pattern:
        write_smoke_report()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
