"""Benchmark smoke runner: execute every bench at tiny scale.

CI's benchmark-smoke job runs this script. For each ``bench_*.py`` module
it imports the module, locates its producer -- the zero-argument
module-level function the ``test_*`` wrapper feeds to
``benchmark.pedantic`` -- runs it with smoke-sized parameters
(``BENCH_SMOKE=1``, see :func:`bench_common.smoke_mode`, plus per-module
constant overrides below) and asserts the result is non-empty. The
paper-shape assertions in the ``test_*`` wrappers are deliberately *not*
evaluated: at smoke scale they are not expected to hold. The goal is to
catch API drift and crashes in every bench quickly, not to validate the
paper's numbers.

Usage::

    python benchmarks/smoke.py            # run all benches
    python benchmarks/smoke.py fig12      # run benches matching a substring
"""

from __future__ import annotations

import glob
import importlib
import inspect
import os
import sys
import time

os.environ.setdefault("BENCH_SMOKE", "1")

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, BENCH_DIR)
sys.path.insert(0, os.path.join(os.path.dirname(BENCH_DIR), "src"))

#: Tiny-scale overrides applied to module-level constants before running
#: (the big sweeps would otherwise dominate the smoke run's wall clock).
SMOKE_OVERRIDES = {
    "bench_fig12_scalability": {"SCALES": ((50, 10), (100, 25))},
    "bench_fig15_sensitivity_error": {"ERROR_LEVELS": (0.0, 0.3)},
    "bench_faults_jct_degradation": {
        "SCHEDULERS": ("optimus",),
        "MTBF_LEVELS": (0.0, 5_000.0),
    },
}


def find_producer(module):
    """The bench's zero-arg producer function (what pedantic would call)."""
    candidates = []
    for name, obj in vars(module).items():
        if name.startswith(("test_", "_")) or not inspect.isfunction(obj):
            continue
        if obj.__module__ != module.__name__:
            continue  # imported helper, not this bench's producer
        parameters = inspect.signature(obj).parameters.values()
        if all(
            p.default is not inspect.Parameter.empty
            or p.kind
            in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
            for p in parameters
        ):
            candidates.append(obj)
    return candidates


def is_non_empty(result) -> bool:
    """A smoke result must be something: not None, not an empty container."""
    if result is None:
        return False
    if isinstance(result, (list, tuple, dict, set, str)):
        values = result.values() if isinstance(result, dict) else result
        return len(result) > 0 and all(item is not None for item in values)
    return True


def run_bench(module_name: str) -> float:
    """Import one bench, apply overrides, run its producers; returns seconds."""
    module = importlib.import_module(module_name)
    for attr, value in SMOKE_OVERRIDES.get(module_name, {}).items():
        setattr(module, attr, value)
    producers = find_producer(module)
    if not producers:
        raise AssertionError(f"{module_name}: no zero-arg producer function found")
    start = time.perf_counter()
    for producer in producers:
        result = producer()
        if not is_non_empty(result):
            raise AssertionError(
                f"{module_name}.{producer.__name__} returned an empty result: "
                f"{result!r}"
            )
    return time.perf_counter() - start


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    pattern = argv[0] if argv else ""
    paths = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    names = [
        os.path.splitext(os.path.basename(path))[0]
        for path in paths
        if os.path.basename(path) != "bench_common.py"
    ]
    if pattern:
        names = [name for name in names if pattern in name]
    if not names:
        print(f"no benches match {pattern!r}", file=sys.stderr)
        return 2

    failures = []
    for name in names:
        try:
            elapsed = run_bench(name)
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures.append((name, exc))
            print(f"FAIL  {name}: {exc}")
        else:
            print(f"ok    {name} ({elapsed:.2f}s)")
    print(
        f"\n{len(names) - len(failures)}/{len(names)} benches passed smoke"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
