"""Fig. 8 -- speed-estimation error vs number of profiling samples.

The paper: <10% error with only 10 (p, w) sample runs, improving with more
samples but with diminishing returns.
"""

import numpy as np

from bench_common import report
from repro.fitting import fit_speed_model, sample_configurations
from repro.workloads import MODEL_ZOO, StepTimeModel

SAMPLE_COUNTS = (5, 8, 10, 16, 24)
TRIALS = 6


def sweep_samples():
    truth = StepTimeModel(MODEL_ZOO["resnet-50"], "sync")
    grid = [(p, w) for p in range(2, 21, 3) for w in range(2, 21, 3)]

    def mean_error(num_samples, trial):
        configs = sample_configurations(20, 20, num_samples, seed=trial * 100)
        samples = [
            (p, w, truth.measured_speed(p, w, seed=trial * 1000 + p * 31 + w,
                                        noise_std=0.03))
            for p, w in configs
        ]
        fit = fit_speed_model(samples, "sync", global_batch=256)
        return float(
            np.mean(
                [abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
                 for p, w in grid]
            )
        )

    return {
        n: float(np.mean([mean_error(n, t) for t in range(TRIALS)]))
        for n in SAMPLE_COUNTS
    }


def test_fig08_sample_efficiency(benchmark):
    errors = benchmark.pedantic(sweep_samples, rounds=1, iterations=1)

    # Paper: under 10% error with 10 samples.
    assert errors[10] < 0.10
    # More samples help...
    assert errors[24] <= errors[5]
    # ...but with diminishing returns: the 16->24 gain is smaller than the
    # 5->10 gain.
    assert (errors[16] - errors[24]) <= (errors[5] - errors[10]) + 0.01

    lines = [
        "paper Fig. 8: <10% speed-estimation error at 10 samples, diminishing",
        "returns beyond.",
        "",
        f"{'samples':>8s} {'mean rel. error':>16s}",
    ]
    for n in SAMPLE_COUNTS:
        lines.append(f"{n:8d} {100*errors[n]:15.1f}%")
    report("fig08_sample_efficiency", lines)
