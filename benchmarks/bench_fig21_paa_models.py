"""Fig. 21 -- PAA speedup across models (10 workers, 10 parameter servers).

Paper: training-speed improvement from PAA over the MXNet default varies by
model and reaches up to ~29% -- larger models with blocks above MXNet's
slicing threshold benefit most.
"""

from bench_common import report
from repro.ps import blocks_from_sizes, mxnet_partition, paa_partition
from repro.workloads import MODEL_ZOO, StepTimeModel

NUM_PS = NUM_WORKERS = 10


def run_models():
    speedups = {}
    for name, profile in MODEL_ZOO.items():
        blocks = blocks_from_sizes(profile.parameter_blocks())
        truth = StepTimeModel(profile, "sync")
        paa = truth.speed(
            NUM_PS, NUM_WORKERS, imbalance=paa_partition(blocks, NUM_PS).imbalance_factor
        )
        mxnet = truth.speed(
            NUM_PS,
            NUM_WORKERS,
            imbalance=mxnet_partition(blocks, NUM_PS, seed=1).imbalance_factor,
        )
        speedups[name] = paa / mxnet - 1.0
    return speedups


def test_fig21_paa_models(benchmark):
    speedups = benchmark.pedantic(run_models, rounds=1, iterations=1)

    # PAA helps most models materially and the best improvement is in the
    # paper's "up to ~29%" ballpark. Models whose blocks all exceed MXNet's
    # slicing threshold get sliced perfectly evenly by the default too, so
    # a near-zero (slightly negative) delta there is expected.
    assert sum(1 for s in speedups.values() if s >= -0.01) >= 7
    assert min(speedups.values()) > -0.10
    assert sum(1 for s in speedups.values() if s > 0.02) >= 3
    assert 0.04 < max(speedups.values()) < 0.60

    lines = [
        "paper Fig. 21: PAA speedup over MXNet default (10 workers, 10 ps),",
        "up to ~29% depending on the model.",
        "",
        f"{'model':14s} {'PAA speedup':>12s}",
    ]
    for name, speedup in sorted(speedups.items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:14s} {100*speedup:11.1f}%")
    report("fig21_paa_models", lines)
