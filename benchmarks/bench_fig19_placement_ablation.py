"""Fig. 19 -- effectiveness of the task-placement algorithm.

Paper: keeping Optimus's allocation but placing tasks the DRF way (load
balancing / spreading) or the Tetris way (fragmentation-minimising packing)
costs about 10-15% in both JCT and makespan.

We run ``optimus+spread`` and ``optimus+pack`` against full Optimus.
"""

from bench_common import paper_workload, report, run_scheduler

VARIANTS = ("optimus", "optimus+pack", "optimus+spread")


def run_ablation():
    jobs = paper_workload(seed=42)
    return {name: run_scheduler(name, jobs=jobs, seed=7) for name in VARIANTS}


def test_fig19_placement_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    base = results["optimus"]

    ratios = {
        name: results[name].average_jct / base.average_jct
        for name in VARIANTS[1:]
    }
    # Optimus placement is never worse, and spreading (the DRF default)
    # costs measurably more than packing, as in the paper.
    assert all(r > 0.97 for r in ratios.values())
    assert ratios["optimus+spread"] >= ratios["optimus+pack"] * 0.97

    lines = [
        "paper Fig. 19 (Optimus allocation everywhere, placement swapped):",
        "normalised JCT pack(tetris)=1.1, spread(drf)=1.15;",
        "makespan pack=1.09, spread=1.13",
        "",
        f"{'variant':16s} {'JCT(h)':>8s} {'norm':>6s} {'makespan(h)':>12s} {'norm':>6s}",
    ]
    for name in VARIANTS:
        result = results[name]
        lines.append(
            f"{name:16s} {result.average_jct/3600:8.2f} "
            f"{result.average_jct/base.average_jct:6.2f} "
            f"{result.makespan/3600:12.2f} "
            f"{result.makespan/base.makespan:6.2f}"
        )
    report("fig19_placement_ablation", lines)
