"""Table 3 -- parameter distribution: PAA vs MXNet's default.

Paper (ResNet-50, 25M parameters in 157 blocks, 10 parameter servers):

    algorithm  size diff  request diff  total requests
    MXNet      3.6M       43            247
    PAA        0.1M       1             157

Shape to hold: PAA's size difference is tiny (~0.1M), its request
difference ~1 and its total requests near the 157-block minimum, while the
MXNet default is far worse on all three.
"""

from bench_common import report
from repro.ps import blocks_from_sizes, mxnet_partition, paa_partition
from repro.workloads import get_profile


def run_partitions():
    profile = get_profile("resnet-50")
    blocks = blocks_from_sizes(profile.parameter_blocks())
    mx = mxnet_partition(blocks, 10, seed=1)
    pa = paa_partition(blocks, 10)
    return blocks, mx, pa


def test_table3_paa(benchmark):
    blocks, mx, pa = benchmark.pedantic(run_partitions, rounds=1, iterations=1)

    assert len(blocks) == 157  # ResNet-50's block count, as in the paper

    # PAA side of Table 3.
    assert pa.size_difference < 0.3e6
    assert pa.request_difference <= 2
    assert pa.total_requests <= 160

    # MXNet side: strictly worse everywhere.
    assert mx.size_difference > 1.5e6
    assert mx.request_difference >= 5
    assert mx.total_requests > pa.total_requests

    lines = [
        "paper Table 3 (ResNet-50, 157 blocks, 10 ps):",
        "  MXNet: size diff 3.6M, request diff 43, total requests 247",
        "  PAA  : size diff 0.1M, request diff 1,  total requests 157",
        "",
        f"{'algorithm':>10s} {'size diff':>11s} {'req diff':>9s} "
        f"{'total reqs':>11s} {'imbalance':>10s}",
    ]
    for assignment in (mx, pa):
        lines.append(
            f"{assignment.algorithm:>10s} "
            f"{assignment.size_difference/1e6:9.2f} M "
            f"{assignment.request_difference:9d} "
            f"{assignment.total_requests:11d} "
            f"{assignment.imbalance_factor:10.2f}"
        )
    report("table3_paa", lines)
