"""Fig. 15 -- sensitivity of Optimus to prediction errors.

Paper: injecting synthetic errors into the convergence and speed estimates
(magnitude decaying with job progress, as in §6.3) increases JCT and
makespan, with diminishing slope; speed errors hurt more than convergence
errors; ~15% degradation at (20% convergence, 10% speed) error.

We run the simulator in its "noisy" estimator mode, which is exactly the
paper's v*(1±e) protocol.
"""

import numpy as np

from bench_common import paper_workload, report, run_scheduler

ERROR_LEVELS = (0.0, 0.15, 0.30, 0.45)
SEEDS = (7, 8, 9)


def run_sensitivity():
    jobs = paper_workload(seed=42)

    def mean_jct(conv_error, speed_error):
        jcts = []
        for seed in SEEDS:
            result = run_scheduler(
                "optimus",
                jobs=jobs,
                seed=seed,
                estimator_mode="noisy",
                convergence_error=conv_error,
                speed_error=speed_error,
            )
            jcts.append(result.average_jct)
        return float(np.mean(jcts))

    convergence = {e: mean_jct(e, 0.0) for e in ERROR_LEVELS}
    speed = {e: mean_jct(0.0, e) for e in ERROR_LEVELS}
    return convergence, speed


def test_fig15_sensitivity_error(benchmark):
    convergence, speed = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)

    base = convergence[0.0]
    # Errors degrade performance, but boundedly (the paper's curves stay
    # within ~1.45x even at 45% error).
    worst = max(max(convergence.values()), max(speed.values()))
    assert worst < base * 1.8
    # Large speed errors clearly hurt (paper: ~1.38x at 45%).
    assert speed[0.45] > base * 1.10
    # ...with a diminishing slope.
    assert (speed[0.45] - speed[0.30]) < (speed[0.30] - speed[0.15]) + 0.15 * base
    # Speed errors hurt more than convergence errors (paper §6.3; in our
    # reproduction convergence errors barely register at all -- they only
    # rescale a job's marginal gains, which rarely flips the allocation).
    assert speed[0.45] >= convergence[0.45]

    lines = [
        "paper Fig. 15: JCT rises with injected estimation error with",
        "diminishing slope; speed errors hurt more than convergence errors.",
        "",
        f"{'error':>6s} {'JCT conv-err (norm)':>20s} {'JCT speed-err (norm)':>21s}",
    ]
    for e in ERROR_LEVELS:
        lines.append(
            f"{int(100*e):5d}% {convergence[e]/base:20.3f} {speed[e]/base:21.3f}"
        )
    report("fig15_sensitivity_error", lines)
