"""Fig. 14 -- running tasks and normalised CPU utilisation over time.

Paper: DRF (work-conserving) runs many more tasks than Optimus, yet the
normalised CPU utilisation of Optimus's workers and parameter servers is
*higher* -- Optimus wrings more work out of every allocated core.
"""


from bench_common import paper_workload, report, run_scheduler

SCHEDULERS = ("optimus", "drf", "tetris")


def run_all():
    jobs = paper_workload(seed=42)
    return {name: run_scheduler(name, jobs=jobs, seed=7) for name in SCHEDULERS}


def test_fig14_utilization(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    tasks = {n: r.mean_running_tasks() for n, r in results.items()}
    worker_util = {n: r.mean_worker_utilization() for n, r in results.items()}

    # Fig 14a: DRF floods the cluster with tasks relative to Optimus.
    assert tasks["drf"] > tasks["optimus"]
    # Fig 14b/c: Optimus's allocated CPUs are busier than DRF's.
    assert worker_util["optimus"] > 0.3
    assert all(0 < u <= 1 for u in worker_util.values())

    lines = [
        "paper Fig. 14: DRF runs ~60 tasks vs Optimus ~20-40; Optimus's",
        "normalised worker/ps CPU utilisation is the highest.",
        "",
        f"{'scheduler':10s} {'mean tasks':>11s} {'worker util':>12s} "
        f"{'ps util':>9s}",
    ]
    for name, result in results.items():
        lines.append(
            f"{name:10s} {tasks[name]:11.1f} "
            f"{100*worker_util[name]:11.1f}% "
            f"{100*result.mean_ps_utilization():8.1f}%"
        )
    lines += [
        "",
        "timeline (running tasks per 10-min slot, optimus vs drf):",
    ]
    opt_series = [s.running_tasks for s in results["optimus"].timeline][:24]
    drf_series = [s.running_tasks for s in results["drf"].timeline][:24]
    lines.append("optimus: " + " ".join(f"{t:3d}" for t in opt_series))
    lines.append("drf    : " + " ".join(f"{t:3d}" for t in drf_series))
    report("fig14_utilization", lines)
