"""Design-choice ablation: the scheduling-interval length.

The paper fixes the interval at 10 minutes (§6.1) and argues the scheduling
overhead is negligible at that cadence. This ablation sweeps the interval:
very long intervals react slowly to arrivals/completions (worse JCT), very
short ones re-checkpoint jobs more often (more scaling events); 10 minutes
sits in the comfortable middle.
"""

from bench_common import paper_workload, report
from repro.cluster import Cluster, cpu_mem
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate

INTERVALS = (150.0, 600.0, 2400.0)


def run_sweep():
    jobs = paper_workload(seed=42)
    out = {}
    for interval in INTERVALS:
        cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
        result = simulate(
            cluster,
            make_scheduler("optimus"),
            jobs,
            SimConfig(seed=7, interval=interval),
        )
        out[interval] = result
    return out


def test_ablation_interval(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for interval, result in results.items():
        assert result.all_finished, interval

    jct = {i: r.average_jct for i, r in results.items()}
    scalings = {
        i: sum(rec.num_scalings for rec in r.jobs.values())
        for i, r in results.items()
    }
    # Coarser scheduling reacts slower: the 40-minute interval cannot beat
    # the 10-minute default on JCT.
    assert jct[2400.0] >= jct[600.0] * 0.95
    # Finer scheduling churns more: more rescaling events than the default.
    assert scalings[150.0] >= scalings[2400.0]

    lines = [
        "paper §6.1 fixes the scheduling interval at 10 minutes; sweep:",
        "",
        f"{'interval':>9s} {'JCT(h)':>8s} {'makespan(h)':>12s} "
        f"{'rescalings':>11s} {'scaling time':>13s}",
    ]
    for interval in INTERVALS:
        result = results[interval]
        lines.append(
            f"{interval/60:7.0f}mi {result.average_jct/3600:8.2f} "
            f"{result.makespan/3600:12.2f} {scalings[interval]:11d} "
            f"{result.total_scaling_time:11.0f} s"
        )
    report("ablation_interval", lines)
