"""Fig. 5 -- normalised training-loss curves for all nine Table-1 jobs.

The shape to hold: after the §3.1 normalisation every job's curve starts at
1, decreases (essentially) monotonically and ends well below its start,
with per-model plateaus spread across (0, 0.4).
"""

import numpy as np

from bench_common import report
from repro.fitting.preprocess import preprocess_losses
from repro.workloads import MODEL_ZOO, LossEmitter


def build_curves():
    curves = {}
    for name, profile in MODEL_ZOO.items():
        spe = profile.steps_per_epoch("sync")
        total_epochs = profile.loss.epochs_to_converge(0.002)
        emitter = LossEmitter(profile.loss, spe, seed=5)
        steps = np.linspace(0, total_epochs * spe, 60).astype(int)
        raw = [emitter.observe(int(s)).loss for s in steps]
        _, normalised, _ = preprocess_losses(steps, raw)
        curves[name] = normalised
    return curves


def test_fig05_loss_curves(benchmark):
    curves = benchmark.pedantic(build_curves, rounds=1, iterations=1)
    assert len(curves) == 9
    finals = {}
    for name, values in curves.items():
        assert max(values) <= 1.0 + 1e-9, name
        assert min(values) > 0.0, name
        # First point is the maximum (loss starts at its peak).
        assert values[0] == max(values), name
        # Ends well below the start (fast-converging jobs with high
        # plateaus, e.g. DSSM, stop around half their initial loss).
        assert values[-1] < 0.6, name
        finals[name] = float(values[-1])

    # The plateaus differ across models (Fig 5 shows a spread of curves).
    assert max(finals.values()) - min(finals.values()) > 0.05

    lines = [
        "paper Fig. 5: all nine jobs' normalised losses decay from 1 towards",
        "model-specific plateaus.",
        "",
        f"{'model':14s} {'final normalised loss':>22s}",
    ]
    for name, final in sorted(finals.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:14s} {final:22.3f}")
    report("fig05_loss_curves", lines)
