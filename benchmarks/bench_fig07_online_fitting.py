"""Fig. 7 -- online Eqn-1 fitting for the Seq2Seq job.

The paper fits b0=0.21, b1=1.07, b2=0.07 on its Seq2Seq run and shows the
fitted curve hugging the data points. Absolute coefficients depend on the
step scale; the shape to hold is a small residual and a fitted curve whose
predictions track the observations across the whole run.
"""


from bench_common import report
from repro.fitting import fit_loss_curve
from repro.workloads import MODEL_ZOO, LossEmitter


def fit_seq2seq():
    profile = MODEL_ZOO["seq2seq"]
    spe = profile.steps_per_epoch("sync")
    total_steps = profile.loss.epochs_to_converge(0.002) * spe
    emitter = LossEmitter(profile.loss, spe, seed=21)
    stride = max(1, int(total_steps / 250))
    observations = emitter.observe_range(0, int(total_steps), stride)
    fit = fit_loss_curve(
        [o.step for o in observations], [o.loss for o in observations]
    )
    return profile, spe, emitter, observations, fit


def test_fig07_online_fitting(benchmark):
    profile, spe, emitter, observations, fit = benchmark.pedantic(
        fit_seq2seq, rounds=1, iterations=1
    )
    # Tight fit in normalised units.
    assert fit.residual < 0.03
    assert fit.beta0 > 0 and fit.beta1 > 0 and fit.beta2 >= 0

    # Fitted predictions track the smooth truth across the run.
    scale = emitter.initial_loss
    rel_errors = []
    total = observations[-1].step
    for frac in (0.2, 0.5, 0.8, 1.0):
        step = int(total * frac)
        truth = emitter.true_loss(step)
        rel_errors.append(abs(fit.predict_raw(step) - truth) / truth)
    assert max(rel_errors) < 0.15

    lines = [
        "paper Fig. 7: Seq2Seq loss fitted with Eqn 1; paper coefficients",
        "b0=0.21 b1=1.07 b2=0.07 (their step scale).",
        f"ours: b0={fit.beta0:.3g} b1={fit.beta1:.3g} b2={fit.beta2:.3g} "
        f"rmse={fit.residual:.4f} on {fit.num_points} points",
        "",
        "progress  true-loss  fitted-loss",
    ]
    for frac in (0.1, 0.25, 0.5, 0.75, 1.0):
        step = int(total * frac)
        lines.append(
            f"{int(frac*100):7d}%  {emitter.true_loss(step):9.3f}  "
            f"{fit.predict_raw(step):11.3f}"
        )
    report("fig07_online_fitting", lines)
