"""Fig. 11 + Fig. 13 -- headline comparison: Optimus vs DRF vs Tetris.

Paper: Optimus improves average JCT by 2.39x over DRF (1.74x over Tetris)
and makespan by 1.63x over DRF; Fig. 13 reports the absolute means and
standard deviations (Optimus/DRF/Tetris finish in 4.1/6.7/5.0 hours).

Shape to hold here: Optimus strictly wins both JCT and makespan against
both baselines, with material (>5%) margins. Absolute factors are smaller
than the paper's because our simulated over-allocation penalties are
gentler than a real 1 GbE MXNet testbed (see EXPERIMENTS.md).
"""

from bench_common import paper_cluster, report
from repro.sim import SimConfig, compare_schedulers, normalized
from repro.workloads import uniform_arrivals

SCHEDULERS = ("optimus", "drf", "tetris")
REPEATS = 3  # the paper repeats each experiment 3 times (§6.1)


def run_all():
    def workload(repeat):
        return uniform_arrivals(num_jobs=9, window=12_000, seed=42 + repeat)

    return compare_schedulers(
        paper_cluster,
        SCHEDULERS,
        workload,
        config=SimConfig(seed=7),
        repeats=REPEATS,
    )


def test_fig11_13_performance(benchmark):
    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, s in stats.items():
        for result in s.results:
            assert result.all_finished, name

    norm = normalized(stats, baseline="optimus")
    # Optimus wins both metrics against both baselines on average.
    for baseline in ("drf", "tetris"):
        assert norm[baseline]["jct"] > 1.05, baseline
        assert norm[baseline]["makespan"] > 1.05, baseline

    lines = [
        "paper Fig. 11 (normalised to Optimus): JCT drf=2.39 tetris=1.74;",
        "makespan drf=1.63 tetris=1.22",
        "paper Fig. 13 (absolute, mean±std over 3 repeats): makespans",
        "4.1h / 6.7h / 5.0h",
        "",
        f"{'scheduler':10s} {'JCT(h)':>8s} {'±std':>6s} {'norm':>6s} "
        f"{'makespan(h)':>12s} {'±std':>6s} {'norm':>6s}",
    ]
    for name in SCHEDULERS:
        s = stats[name]
        lines.append(
            f"{name:10s} {s.average_jct/3600:8.2f} "
            f"{s.jct_std/3600:6.2f} {norm[name]['jct']:6.2f} "
            f"{s.makespan/3600:12.2f} {s.makespan_std/3600:6.2f} "
            f"{norm[name]['makespan']:6.2f}"
        )
    report("fig11_13_performance", lines)
