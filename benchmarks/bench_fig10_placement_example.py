"""Fig. 10 -- the worked placement example behind Theorem 1.

A synchronous job with 2 parameter servers and 4 workers on 3 servers
(3 task slots each): the paper computes cross-server transfer times of
3, 3 and 2 units for its layouts (a), (b) and (c), and §4.2's algorithm
must pick a (c)-equivalent layout -- fewest servers, even per-server mix.
"""

from bench_common import report
from repro.cluster import Cluster, cpu_mem
from repro.core.placement import PlacementRequest, place_jobs, transfer_units

LAYOUTS = {
    "(a)": {"s1": (1, 1), "s2": (1, 1), "s3": (2, 0)},
    "(b)": {"s1": (2, 1), "s2": (1, 1), "s3": (1, 0)},
    "(c)": {"s1": (2, 1), "s2": (2, 1)},
}


def run_example():
    costs = {
        name: transfer_units(layout, model_units=2.0)
        for name, layout in LAYOUTS.items()
    }
    # What does our §4.2 placement choose for the same instance?
    cluster = Cluster.homogeneous(3, cpu_mem(15, 60), name_prefix="s")
    request = PlacementRequest(
        job_id="fig10",
        workers=4,
        ps=2,
        worker_demand=cpu_mem(5, 10),
        ps_demand=cpu_mem(5, 10),
    )
    result = place_jobs(cluster, [request])
    chosen = result.layouts["fig10"]
    chosen_cost = transfer_units(chosen, model_units=2.0)
    return costs, chosen, chosen_cost


def test_fig10_placement_example(benchmark):
    costs, chosen, chosen_cost = benchmark.pedantic(
        run_example, rounds=1, iterations=1
    )
    # The paper's accounting, exactly.
    assert costs["(a)"] == 3.0
    assert costs["(b)"] == 3.0
    assert costs["(c)"] == 2.0
    # Our placement algorithm picks a layout as good as (c).
    assert chosen_cost <= costs["(c)"] + 1e-9
    assert len(chosen) == 2  # fewest servers

    lines = [
        "paper Fig. 10: 2 ps + 4 workers over 3 servers; transfer times of",
        "layouts (a), (b), (c) are 3, 3, 2 units -- (c) is best.",
        "",
    ]
    for name, layout in LAYOUTS.items():
        lines.append(f"layout {name}: {layout} -> {costs[name]:.0f} units")
    lines += [
        "",
        f"§4.2 placement chose: {dict(chosen)} -> {chosen_cost:.0f} units",
    ]
    report("fig10_placement_example", lines)
