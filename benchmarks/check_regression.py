"""Compare a fresh BENCH_smoke.json against the committed baseline.

CI's benchmark-smoke job stashes the committed ``BENCH_smoke.json``,
reruns ``benchmarks/smoke.py`` on the PR's code, then calls::

    python benchmarks/check_regression.py baseline.json BENCH_smoke.json

The check fails (exit 1) when the interval-loop wall time regresses by
more than ``--max-ratio`` (default 1.3, i.e. +30%) over the baseline.
Other report fields are printed for context but not gated: wall time is
the one metric every perf PR here optimises, and a loose 30% band keeps
runner-to-runner noise from flaking the job.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The gated metric and the report fields echoed for context.
GATED_METRIC = "interval_loop_seconds"
CONTEXT_METRICS = (
    "intervals",
    "allocate_p95_ms",
    "place_p95_ms",
    "average_jct_seconds",
)


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_smoke.json")
    parser.add_argument("current", help="freshly produced BENCH_smoke.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail when current/baseline exceeds this (default 1.3 = +30%%)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    base_value = float(baseline[GATED_METRIC])
    cur_value = float(current[GATED_METRIC])
    if base_value <= 0:
        print(f"baseline {GATED_METRIC} is {base_value}; nothing to gate")
        return 0
    ratio = cur_value / base_value

    print(
        f"{GATED_METRIC}: baseline {base_value:.4f}s -> current "
        f"{cur_value:.4f}s (x{ratio:.2f}, limit x{args.max_ratio:.2f})"
    )
    for name in CONTEXT_METRICS:
        if name in baseline or name in current:
            print(f"  {name}: {baseline.get(name)} -> {current.get(name)}")

    if ratio > args.max_ratio:
        print(
            f"FAIL: interval loop slowed by more than "
            f"{100 * (args.max_ratio - 1):.0f}%",
            file=sys.stderr,
        )
        return 1
    print("ok: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
