"""Compare a fresh benchmark report against its committed baseline.

CI's benchmark jobs stash the committed report (``BENCH_smoke.json``,
``BENCH_scale.json``), rerun the producing benchmark on the PR's code,
then call::

    python benchmarks/check_regression.py baseline.json current.json

Every numeric key the two reports share is gated: the check fails
(exit 1) when any metric regresses by more than ``--max-ratio`` (default
1.3, i.e. +30%) over the baseline. Wall times and latencies regress by
*growing*; throughput-style metrics (``*_per_second``, ``*_rate``,
``*_throughput``, and explicit names below) regress by *shrinking*, so
their ratio is inverted before gating. A loose 30% band keeps
runner-to-runner noise from flaking the job while still catching real
slowdowns.

A baseline key missing from the current report fails the check outright:
silently dropping a metric from the report would otherwise remove it
from the gate forever. Keys only present in the current report are
listed as informational (they join the gate once the baseline is
regenerated).

``*_ratio`` keys are already relative measurements (e.g. BENCH_smoke's
``ledger_overhead_ratio``, full-ledger wall time over ledger-off wall
time) and gate like any other lower-is-better metric: the check compares
the fresh ratio against the baseline ratio, so a ledger change that
makes instrumented runs relatively slower trips the same 30% band.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Suffixes marking higher-is-better metrics (throughputs, plus the
#: arena gate's fairness/utilisation/completion-count columns).
HIGHER_IS_BETTER_SUFFIXES = (
    "_per_second",
    "_rate",
    "_throughput",
    "_fairness",
    "_utilization",
    "_finished",
)

#: Exact key names that are higher-is-better regardless of suffix.
HIGHER_IS_BETTER_KEYS = frozenset({"jobs_completed", "placement_cache_hits"})

#: Extra budget multiplier for tail-latency quantiles: a p95 estimated
#: from a few dozen histogram samples swings several-fold between
#: otherwise identical runs, so gating it at the wall-time band would
#: flake CI. It stays gated -- just against a proportionally wider band.
QUANTILE_SLACK = 4.0
QUANTILE_SUFFIXES = ("_p95_ms", "_p99_ms")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def higher_is_better(key: str) -> bool:
    return key in HIGHER_IS_BETTER_KEYS or key.endswith(
        HIGHER_IS_BETTER_SUFFIXES
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed report JSON")
    parser.add_argument("current", help="freshly produced report JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail when a metric regresses past this (default 1.3 = +30%%)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)

    base_keys = {k for k, v in baseline.items() if is_numeric(v)}
    cur_keys = {k for k, v in current.items() if is_numeric(v)}

    missing = sorted(base_keys - cur_keys)
    if missing:
        print(
            "FAIL: baseline metrics missing from the current report: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        print(
            "(dropping a metric silently removes it from the gate; if the "
            "removal is intentional, regenerate the committed baseline)",
            file=sys.stderr,
        )
        return 1

    extra = sorted(cur_keys - base_keys)
    if extra:
        print(
            "new metrics not in the baseline (ungated until it is "
            "regenerated): " + ", ".join(extra)
        )

    failures = []
    for key in sorted(base_keys):
        base_value = float(baseline[key])
        cur_value = float(current[key])
        inverted = higher_is_better(key)
        if base_value == 0.0 or (inverted and cur_value == 0.0):
            status = "ok" if cur_value == base_value else "ungated (zero)"
            print(f"  {key}: {base_value:g} -> {cur_value:g} [{status}]")
            continue
        ratio = base_value / cur_value if inverted else cur_value / base_value
        direction = "higher-is-better" if inverted else "lower-is-better"
        limit = args.max_ratio
        if key.endswith(QUANTILE_SUFFIXES):
            limit *= QUANTILE_SLACK
        verdict = "ok" if ratio <= limit else "REGRESSED"
        print(
            f"  {key}: {base_value:g} -> {cur_value:g} "
            f"(x{ratio:.3f} {direction}, limit x{limit:.2f}) [{verdict}]"
        )
        if ratio > limit:
            failures.append((key, ratio))

    if failures:
        worst = ", ".join(f"{key} (x{ratio:.2f})" for key, ratio in failures)
        print(
            f"FAIL: {len(failures)} metric(s) beyond the regression "
            f"budget: {worst}",
            file=sys.stderr,
        )
        return 1
    print("ok: every shared metric within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
